package store

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// readConfig is testConfig with the per-shard reader pool enabled.
func readConfig() Config {
	cfg := testConfig()
	cfg.ReadConcurrency = 4
	return cfg
}

// TestStoreConcurrentReadServesOffPool proves the fast path actually
// engages: with ReadConcurrency set, gets on a quiet store are served
// by the caller's goroutine (concurrent_reads counts them) and never
// touch the queue-wait phase.
func TestStoreConcurrentReadServesOffPool(t *testing.T) {
	s := mustOpen(t, readConfig())
	ctx := context.Background()
	for key := uint64(0); key < 64; key++ {
		if err := s.Put(ctx, key, stamp(key)); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	for key := uint64(0); key < 64; key++ {
		v, err := s.Get(ctx, key)
		if err != nil {
			t.Fatalf("get %d: %v", key, err)
		}
		checkStamp(t, key, v)
	}
	// Missing keys are still ErrNotFound off the fast path.
	if _, err := s.Get(ctx, 4095); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	snap := s.Stats()
	var conc, fallbacks uint64
	for _, ss := range snap.Shards {
		conc += ss.ConcurrentRds
		fallbacks += ss.ReadFallbacks
	}
	if conc == 0 {
		t.Fatal("no gets served off the reader pool")
	}
	if conc+fallbacks < 64 {
		t.Fatalf("reads unaccounted for: concurrent=%d fallbacks=%d", conc, fallbacks)
	}
	var gets uint64
	for _, ss := range snap.Shards {
		gets += ss.Gets
	}
	if gets < 64 {
		t.Fatalf("gets = %d, want >= 64", gets)
	}
}

// TestStoreReadConcurrencyDisabled pins the default: with
// ReadConcurrency zero the pool never engages and every get is
// serialized through the shard worker, exactly as before.
func TestStoreReadConcurrencyDisabled(t *testing.T) {
	s := mustOpen(t, testConfig())
	ctx := context.Background()
	if err := s.Put(ctx, 7, stamp(7)); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkStamp(t, 7, v)
	for _, ss := range s.Stats().Shards {
		if ss.ConcurrentRds != 0 {
			t.Fatalf("shard %d served %d concurrent reads with the pool disabled", ss.Shard, ss.ConcurrentRds)
		}
	}
}

// TestStoreUnsupportedPolicyFallsBack: a protocol whose policy opts
// out of concurrent reads (indirect reads mutate the shadow table) must
// silently serialize every get even when ReadConcurrency is set.
func TestStoreUnsupportedPolicyFallsBack(t *testing.T) {
	cfg := readConfig()
	cfg.Protocol = "indirect"
	s := mustOpen(t, cfg)
	ctx := context.Background()
	if err := s.Put(ctx, 7, stamp(7)); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkStamp(t, 7, v)
	for _, ss := range s.Stats().Shards {
		if ss.ConcurrentRds != 0 {
			t.Fatalf("shard %d bypassed the queue under an opt-out policy", ss.Shard)
		}
	}
}

// TestStoreConcurrentReadHammer is the system-level race hammer: 8
// writer goroutines churn stamped values while 32 readers issue gets
// against the same keyspace with the reader pool enabled. Every
// successful read must carry a valid stamp (an integrity break or a
// torn snapshot would corrupt it), and a final serialized sweep must
// agree with a pool-served sweep key for key.
func TestStoreConcurrentReadHammer(t *testing.T) {
	s := mustOpen(t, readConfig())
	ctx := context.Background()
	const keys = 256
	for key := uint64(0); key < keys; key++ {
		if err := s.Put(ctx, key, stamp(key)); err != nil {
			t.Fatalf("seed put %d: %v", key, err)
		}
	}

	const (
		writers        = 8
		readers        = 32
		opsPerWriter   = 200
		readsPerReader = 300
	)
	var wg sync.WaitGroup
	var integrityErrs atomic.Uint64
	errCh := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < opsPerWriter; i++ {
				key := uint64(rng.Intn(keys))
				if err := s.Put(ctx, key, stamp(key)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 900))
			for i := 0; i < readsPerReader; i++ {
				key := uint64(rng.Intn(keys))
				v, err := s.Get(ctx, key)
				if err != nil {
					errCh <- err
					return
				}
				if len(v) != 16 || binary.LittleEndian.Uint64(v) != key || binary.LittleEndian.Uint64(v[8:]) != ^key {
					integrityErrs.Add(1)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("hammer op: %v", err)
	}
	if n := integrityErrs.Load(); n != 0 {
		t.Fatalf("%d corrupt values read under concurrency", n)
	}

	// Final sweep, twice: once through the pool, once serialized via
	// a fresh store with the pool off would need a checkpoint — the
	// equivalent check here is that the pool-served sweep and the
	// batch (queue-served leftovers included) sweep agree.
	allKeys := make([]uint64, keys)
	for i := range allKeys {
		allKeys[i] = uint64(i)
	}
	vals, errs := s.GetBatch(ctx, allKeys)
	for key := uint64(0); key < keys; key++ {
		if errs[key] != nil {
			t.Fatalf("sweep key %d: %v", key, errs[key])
		}
		checkStamp(t, key, vals[key])
		v, err := s.Get(ctx, key)
		if err != nil {
			t.Fatalf("sweep get %d: %v", key, err)
		}
		checkStamp(t, key, v)
	}

	snap := s.Stats()
	var conc uint64
	for _, ss := range snap.Shards {
		conc += ss.ConcurrentRds
	}
	if conc == 0 {
		t.Fatal("hammer never used the reader pool")
	}
	t.Logf("concurrent_reads=%d retries=%d fallbacks=%d", conc, sumRetries(snap), sumFallbacks(snap))
}

func sumRetries(snap Snapshot) (n uint64) {
	for _, ss := range snap.Shards {
		n += ss.ReadRetries
	}
	return
}

func sumFallbacks(snap Snapshot) (n uint64) {
	for _, ss := range snap.Shards {
		n += ss.ReadFallbacks
	}
	return
}

// TestStoreConcurrentReadQuarantinedShard is the chaos-matrix cell
// for the reader pool: concurrent gets against a quarantined shard
// must nack with ErrShardFailed exactly like queued ones — the fast
// path may never serve data from a shard that failed its recovery
// contract — and healthy shards keep serving off the pool.
func TestStoreConcurrentReadQuarantinedShard(t *testing.T) {
	cfg := readConfig()
	cfg.HealMaxAttempts = -1 // stay quarantined for the whole test
	s := mustOpen(t, cfg)
	ctx := context.Background()
	const keys = 64
	for key := uint64(0); key < keys; key++ {
		if err := s.Put(ctx, key, stamp(key)); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	const victim = 1
	if err := s.Quarantine(ctx, victim); err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	for key := uint64(0); key < keys; key++ {
		sh, _, err := s.shardFor(key)
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Get(ctx, key)
		if sh.id == victim {
			if !errors.Is(err, ErrShardFailed) {
				t.Fatalf("key %d on quarantined shard: err=%v, want ErrShardFailed", key, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("key %d on healthy shard: %v", key, err)
		}
		checkStamp(t, key, v)
	}
	ss := s.Stats().Shards[victim]
	if ss.Health != "quarantined" {
		t.Fatalf("victim health = %s", ss.Health)
	}
	if ss.ConcurrentRds != 0 {
		// Pool reads before the quarantine are fine; but the loop above
		// ran after it, so any count must come from the pre-quarantine
		// puts' era — there were no gets then.
		t.Fatalf("quarantined shard served %d pool reads", ss.ConcurrentRds)
	}
}

// TestStoreConcurrentReadDuringRecovery: while a shard is rebuilding
// online after chaos, the controller refuses view reads
// (mee.ErrRecovering) and the store must transparently fall back to
// the queue — clients see valid data, not errors.
func TestStoreConcurrentReadDuringRecovery(t *testing.T) {
	cfg := readConfig()
	cfg.RecoveryChunk = 1 // stretch the rebuild across many waves
	s := mustOpen(t, cfg)
	ctx := context.Background()
	const keys = 256
	// Two rounds so a legally rolled-back block re-reads the same
	// stamp rather than "absent" (matches TestStoreChaosMatrix).
	for round := 0; round < 2; round++ {
		for key := uint64(0); key < keys; key++ {
			if err := s.Put(ctx, key, stamp(key)); err != nil {
				t.Fatalf("put %d: %v", key, err)
			}
		}
	}
	res, err := s.Chaos(ctx, ChaosSpec{Shard: 1, Kind: "torn", Seed: 42})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	if res.Status == "violation" {
		t.Fatalf("silent corruption: %+v", res)
	}
	mayMiss := map[uint64]bool{}
	if res.Status == "recovered" {
		for _, blk := range res.DataBlocks {
			mayMiss[blk*uint64(cfg.Shards)+1] = true
		}
	}
	for key := uint64(0); key < keys; key++ {
		v, err := s.Get(ctx, key)
		if errors.Is(err, ErrNotFound) && mayMiss[key] {
			continue
		}
		if err != nil {
			t.Fatalf("get %d during/after recovery: %v", key, err)
		}
		checkStamp(t, key, v)
	}
	// The fallback path must be error-free: no view error may have
	// leaked to a client (we would have failed above), and the
	// fallback counter proves the degradation path was exercised or
	// the recovery won the race — either is correct.
	t.Logf("fallbacks=%d", sumFallbacks(s.Stats()))
}
