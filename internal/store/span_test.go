package store

import (
	"context"
	"testing"

	"amnt/internal/telemetry/span"
)

// spanFor runs fn with a fresh span threaded through the context and
// returns it for phase inspection.
func spanFor(t *testing.T, fn func(ctx context.Context) error) *span.Span {
	t.Helper()
	r := span.New(span.Config{SampleEvery: 1})
	op := r.Op("test")
	sp := op.Start("req")
	if sp == nil {
		t.Fatal("sampling gate returned nil at SampleEvery 1")
	}
	if err := fn(span.NewContext(context.Background(), sp)); err != nil {
		t.Fatalf("traced op: %v", err)
	}
	return sp
}

// TestSpanAttributionPut verifies a put threaded through the serving
// path comes back with every expected phase stamped: queue wait at
// dequeue, epoch residency at commit, the commit's climb/persist wall
// split, and no fallback on the healthy path.
func TestSpanAttributionPut(t *testing.T) {
	s := mustOpen(t, testConfig())
	sp := spanFor(t, func(ctx context.Context) error {
		return s.Put(ctx, 42, []byte("traced"))
	})
	if sp.Shard() < 0 {
		t.Fatalf("shard = %d, want claimed", sp.Shard())
	}
	if sp.PhaseNs(span.QueueWait) <= 0 {
		t.Fatal("queue_wait never stamped")
	}
	if sp.PhaseNs(span.EpochStage) <= 0 {
		t.Fatal("epoch_stage never stamped")
	}
	if sp.PhaseNs(span.CommitClimb) <= 0 {
		t.Fatal("commit_climb never stamped")
	}
	if sp.PhaseNs(span.EpochFallback) != 0 {
		t.Fatal("healthy put charged epoch_fallback")
	}
}

// TestSpanAttributionGet verifies the read path: the verified read
// walk lands in commit_climb, and write-only phases stay zero.
func TestSpanAttributionGet(t *testing.T) {
	s := mustOpen(t, testConfig())
	ctx := context.Background()
	if err := s.Put(ctx, 7, []byte("v")); err != nil {
		t.Fatalf("seed put: %v", err)
	}
	sp := spanFor(t, func(ctx context.Context) error {
		_, err := s.Get(ctx, 7)
		return err
	})
	if sp.PhaseNs(span.QueueWait) <= 0 {
		t.Fatal("queue_wait never stamped")
	}
	if sp.PhaseNs(span.CommitClimb) <= 0 {
		t.Fatal("commit_climb (verified read walk) never stamped")
	}
	if sp.PhaseNs(span.Persist) != 0 {
		t.Fatal("read charged persist")
	}
}

// TestSpanAttributionBatch verifies fan-out attribution: the parent
// span absorbs the slowest leg, so a multi-shard batch still reports
// serving-path phases, and a cross-shard batch is marked multi-shard.
func TestSpanAttributionBatch(t *testing.T) {
	s := mustOpen(t, testConfig())
	kvs := make([]KV, 16)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i), Value: stamp(uint64(i))}
	}
	sp := spanFor(t, func(ctx context.Context) error {
		for _, err := range s.PutBatch(ctx, kvs) {
			if err != nil {
				return err
			}
		}
		_, errs := s.GetBatch(ctx, []uint64{0, 1, 2, 3})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
	// 16 sequential keys over 4 shards is a genuine fan-out.
	if sp.Shard() != -1 {
		t.Fatalf("shard = %d, want -1 (multi)", sp.Shard())
	}
	if sp.PhaseNs(span.QueueWait) <= 0 {
		t.Fatal("queue_wait never absorbed from a leg")
	}
	if sp.PhaseNs(span.CommitClimb) <= 0 {
		t.Fatal("commit_climb never absorbed from a leg")
	}
}

// TestRecoveryWatermark verifies the live rebuild progress plumbing:
// after a power-cycle recovery every shard reports a completed
// watermark (done == total > 0) and a wall time.
func TestRecoveryWatermark(t *testing.T) {
	s := mustOpen(t, testConfig())
	ctx := context.Background()
	for k := uint64(0); k < 64; k++ {
		if err := s.Put(ctx, k, stamp(k)); err != nil {
			t.Fatalf("seed put: %v", err)
		}
	}
	if err := s.Recover(ctx); err != nil {
		t.Fatalf("recover: %v", err)
	}
	snap := s.Stats()
	for _, sh := range snap.Shards {
		if sh.RecoveryTotal == 0 {
			t.Fatalf("shard %d: recovery watermark total = 0 after recover", sh.Shard)
		}
		if sh.RecoveryDone != sh.RecoveryTotal {
			t.Fatalf("shard %d: watermark %d/%d, want complete",
				sh.Shard, sh.RecoveryDone, sh.RecoveryTotal)
		}
	}
}
