// Live partition migration: the hand-off primitive that moves one
// partition's shard between stores without losing acknowledged
// writes. The protocol, driven from outside the store (the cluster
// layer speaks it over /v1/migrate):
//
//	source                          destination
//	------                          -----------
//	MigrateBegin(p)   → image    →  MigrateAttach(p, image)
//	  (checkpoint + journal on)       (load + recover + verify, staged)
//	MigrateDelta(p)   → ops      →  MigrateApply(p, ops)     × rounds
//	MigrateFence(p)                   (replay journaled writes)
//	  (writes nack ErrFenced)
//	MigrateDelta(p)   → final    →  MigrateApply(p, final)
//	                                MigrateActivate(p)
//	  (ring ownership flips here)
//	MigrateDetach(p)
//
// The image is the shard's checkpoint — recovery on the destination
// rebuilds and audits the integrity tree from it, so the hand-off
// inherits the paper's recovery guarantees instead of trusting the
// wire. Writes acknowledged during the copy are journaled and
// replayed; the fence closes the journal with a precise cut (FIFO
// through the shard queue), so the final delta is complete. Reads
// keep serving from the source until the ring flips.
package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// migJournalCap bounds the write-delta journal of one outbound
// migration. A migration that cannot catch up within this many
// journaled writes should be aborted and retried off-peak.
const migJournalCap = 1 << 17

// ErrMigrationJournalOverflow: the write rate outran the journal
// during a copy; the migration must be aborted and retried.
var ErrMigrationJournalOverflow = errors.New("store: migration journal overflow")

// ErrNoMigration: the partition has no migration in progress.
var ErrNoMigration = errors.New("store: no migration in progress")

// ErrAlreadyStaged: the partition already has a staged inbound image.
var ErrAlreadyStaged = errors.New("store: partition already staged")

// ErrAlreadyOwned: the partition is already hosted by this store.
var ErrAlreadyOwned = errors.New("store: partition already owned")

// DeltaOp is one journaled write: a shard-local block and its raw
// (unframed) value. JSON encoding base64s the value.
type DeltaOp struct {
	Block uint64 `json:"block"`
	Value []byte `json:"value"`
}

// journalPut appends one acknowledged write to the delta journal.
// Worker-goroutine only; a no-op unless an outbound migration is
// copying this shard.
func (sh *shard) journalPut(block uint64, value []byte) {
	if !sh.migActive.Load() {
		return
	}
	sh.migMu.Lock()
	if sh.migOn {
		if len(sh.migLog) >= migJournalCap {
			sh.migOverflow = true
		} else {
			v := make([]byte, len(value))
			copy(v, value)
			sh.migLog = append(sh.migLog, DeltaOp{Block: block, Value: v})
		}
	}
	sh.migMu.Unlock()
}

// MigrateBegin starts an outbound migration of one partition: it
// commits the open epoch, completes any in-flight rebuild, flushes,
// snapshots the shard's checkpoint image, and turns the write-delta
// journal on. The returned image is what MigrateAttach loads on the
// destination. The shard keeps serving reads and writes.
func (s *Store) MigrateBegin(ctx context.Context, part int) ([]byte, error) {
	sh, err := s.lookup(part)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	_, err = s.submit(ctx, sh, request{op: opMigrateBegin, migBuf: &buf, resp: make(chan response, 1)})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// MigrateDelta drains up to max journaled writes (0 = all) from the
// partition's outbound migration. remaining reports how many are
// still queued after the drain — the driver loops until it is small
// enough to fence. Fails with ErrMigrationJournalOverflow when the
// journal overflowed during the copy; the migration must be aborted.
func (s *Store) MigrateDelta(part, max int) (ops []DeltaOp, remaining int, err error) {
	sh, err := s.lookup(part)
	if err != nil {
		return nil, 0, err
	}
	sh.migMu.Lock()
	defer sh.migMu.Unlock()
	if !sh.migOn {
		return nil, 0, ErrNoMigration
	}
	if sh.migOverflow {
		return nil, 0, ErrMigrationJournalOverflow
	}
	n := len(sh.migLog)
	if max > 0 && max < n {
		n = max
	}
	ops = sh.migLog[:n:n]
	sh.migLog = sh.migLog[n:]
	return ops, len(sh.migLog), nil
}

// MigrateFence write-fences the partition for the final hand-off
// step: puts nack with ErrFenced (a retryable degradation, like
// ErrOverloaded) while reads keep serving. The fence is a worker
// control op, so FIFO order through the shard queue makes it a
// precise cut — every put acknowledged before it is in the journal,
// every put drained after it is refused. Call MigrateDelta once more
// after the fence for the complete final delta.
func (s *Store) MigrateFence(ctx context.Context, part int) error {
	sh, err := s.lookup(part)
	if err != nil {
		return err
	}
	_, err = s.submit(ctx, sh, request{op: opMigrateFence, resp: make(chan response, 1)})
	return err
}

// MigrateAbort cancels an outbound migration: the fence lifts, the
// journal drops, and the shard resumes normal service.
func (s *Store) MigrateAbort(ctx context.Context, part int) error {
	sh, err := s.lookup(part)
	if err != nil {
		return err
	}
	_, err = s.submit(ctx, sh, request{op: opMigrateAbort, resp: make(chan response, 1)})
	return err
}

// MigrateDetach removes the migrated-away partition from this store
// once the destination has activated it and ring ownership has
// flipped. The shard drains, flushes, and stops — but skips its final
// shutdown checkpoint, since the partition's image now belongs to the
// new owner. Requests racing the detach fail with NotOwnedError.
func (s *Store) MigrateDetach(ctx context.Context, part int) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	tab := s.table()
	sh := tab.parts[part]
	if sh == nil {
		s.mu.Unlock()
		return &NotOwnedError{Partition: part}
	}
	sh.noFinalCkpt.Store(true)
	sh.stopped.Store(true)
	s.tab.Store(tab.without(part))
	close(sh.ch)
	s.mu.Unlock()
	select {
	case <-sh.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// MigrateAttach stages an inbound partition from a checkpoint image
// stream: load, run the protocol's recovery, and verify the whole
// tree — the destination trusts the recovery audit, not the wire.
// The staged shard is not yet serving; apply deltas with
// MigrateApply, then make it live with MigrateActivate.
func (s *Store) MigrateAttach(part int, r io.Reader) error {
	if part < 0 || part >= s.cfg.Partitions {
		return fmt.Errorf("store: no partition %d", part)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.table().parts[part] != nil {
		s.mu.Unlock()
		return ErrAlreadyOwned
	}
	if s.staging[part] != nil {
		s.mu.Unlock()
		return ErrAlreadyStaged
	}
	s.mu.Unlock()

	sh, err := s.newShard(part)
	if err != nil {
		return err
	}
	if err := sh.ctrl.LoadCheckpoint(r); err != nil {
		return fmt.Errorf("store: attach partition %d: %w", part, err)
	}
	if _, err := sh.ctrl.Recover(sh.now); err != nil {
		return fmt.Errorf("store: attach partition %d: recovery: %w", part, err)
	}
	if err := sh.ctrl.VerifyAll(sh.now); err != nil {
		return fmt.Errorf("store: attach partition %d: verify: %w", part, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.table().parts[part] != nil {
		return ErrAlreadyOwned
	}
	if s.staging[part] != nil {
		return ErrAlreadyStaged
	}
	s.staging[part] = sh
	return nil
}

// MigrateApply replays one batch of journaled writes onto the staged
// partition. Single-threaded per partition by contract (the migration
// driver is the only writer until activation).
func (s *Store) MigrateApply(part int, ops []DeltaOp) error {
	s.mu.Lock()
	sh := s.staging[part]
	s.mu.Unlock()
	if sh == nil {
		return ErrNoMigration
	}
	for _, op := range ops {
		if op.Block >= sh.blocks {
			return fmt.Errorf("store: apply partition %d: %w", part, ErrOutOfRange)
		}
		if len(op.Value) > MaxValueLen {
			return fmt.Errorf("store: apply partition %d: %w", part, ErrValueTooLarge)
		}
		if err := sh.putBlock(op.Block, op.Value); err != nil {
			return fmt.Errorf("store: apply partition %d block %d: %w", part, op.Block, err)
		}
	}
	return nil
}

// MigrateActivate makes the staged partition live: its worker starts
// and the shard table gains the mapping, so requests for the
// partition route here from the next shardFor on. The caller flips
// ring ownership around this call.
func (s *Store) MigrateActivate(part int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	sh := s.staging[part]
	if sh == nil {
		return ErrNoMigration
	}
	delete(s.staging, part)
	sh.now += sh.ctrl.Flush(sh.now)
	sh.inj.Attach()
	s.tab.Store(s.table().with(sh))
	go sh.run()
	return nil
}

// MigrateDiscard drops a staged inbound partition (migration aborted
// before activation).
func (s *Store) MigrateDiscard(part int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.staging[part] == nil {
		return ErrNoMigration
	}
	delete(s.staging, part)
	return nil
}

// Staging returns the partition ids with staged (attached but not yet
// activated) inbound migrations.
func (s *Store) Staging() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.staging))
	for p := range s.staging {
		out = append(out, p)
	}
	return out
}

// Adopt loads an orphaned partition from the shared checkpoint
// directory — the kill-one-node hand-off path. The dead node's last
// checkpoint is the durable truth for the partition; Adopt attaches
// it (load + recover + verify) and activates it in one step. Writes
// acknowledged by the dead node after its last checkpoint were
// journaled nowhere and are the documented loss window of a hard
// kill; the cluster closes it by checkpointing on a barrier before
// reporting writes as surviving (see the chaos drill).
func (s *Store) Adopt(part int) error {
	if s.cfg.CheckpointDir == "" {
		return errors.New("store: no checkpoint dir configured")
	}
	if part < 0 || part >= s.cfg.Partitions {
		return fmt.Errorf("store: no partition %d", part)
	}
	path := filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("shard-%03d.ckpt", part))
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: adopt partition %d: %w", part, err)
	}
	defer f.Close()
	if err := s.MigrateAttach(part, f); err != nil {
		return err
	}
	return s.MigrateActivate(part)
}
