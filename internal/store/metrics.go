package store

import (
	"fmt"
	"sync/atomic"

	"amnt/internal/stats"
	"amnt/internal/telemetry"
)

// shardMetrics is the shard's externally visible state. The worker
// owns the controller, so telemetry must not read mee state directly
// (Registry.Sample and HTTP handlers run on other goroutines);
// instead the worker publishes snapshots into these atomics after
// every batch and readers see the last published value.
type shardMetrics struct {
	gets, puts, flushes, checkpoints, recoveries atomic.Uint64
	misses, integrityErrs, otherErrs, overloads  atomic.Uint64
	batches, batchItems, failures                atomic.Uint64

	// Degraded-serving and quarantine-heal accounting: requests
	// nacked because metadata was not yet reconstructible, heal
	// attempts started, and heals that restored service.
	recoveringNacks, healAttempts, heals atomic.Uint64
	// Cumulative work served under recovery sessions: writes whose
	// climb was deferred to the finish audit, and counter leaves
	// loaded provisionally (authenticated later by that audit).
	degradedWrites, provisionalLoads atomic.Uint64

	chaosRuns, chaosRecovered, chaosDetected atomic.Uint64
	chaosRepaired, chaosViolations           atomic.Uint64

	// Group-commit accounting: committed epochs, writes they carried,
	// and commits that degraded to per-op replay.
	epochs, epochOps, epochFallbacks atomic.Uint64

	// Migration accounting: outbound migrations begun on this shard,
	// and writes nacked during a hand-off fence.
	migrations, fencedNacks atomic.Uint64

	// Reader-pool accounting (written by caller goroutines, not the
	// worker): gets served off the concurrent read view, snapshot
	// retries on seq conflicts, and attempts abandoned to the queue.
	concurrentReads, readRetries, readFallbacks atomic.Uint64

	// Controller snapshot, published by the worker.
	cycles, dataReads, dataWrites, metaFetches atomic.Uint64
	postedWrites, stallCycles, mergedWrites    atomic.Uint64
}

// publish snapshots the worker-owned controller counters into the
// shared atomics. Worker-goroutine only.
func (sh *shard) publish() {
	st := sh.ctrl.Stats()
	m := &sh.m
	m.cycles.Store(sh.now)
	m.dataReads.Store(st.DataReads.Value())
	m.dataWrites.Store(st.DataWrites.Value())
	m.metaFetches.Store(st.MetaFetches.Value())
	m.postedWrites.Store(st.PostedWrites.Value())
	m.stallCycles.Store(st.StallCycles.Value())
	m.mergedWrites.Store(sh.ctrl.MergedWrites())
}

// ShardSnapshot is one shard's published counters. Shard is the
// global partition id the shard hosts.
type ShardSnapshot struct {
	Shard int `json:"shard"`
	// Health is the serving state: "serving", "recovering" (tree
	// rebuild in flight; degraded traffic may still be admitted), or
	// "quarantined" (heal loop retrying).
	Health string `json:"health"`
	// Serving is whether the shard currently accepts requests — true
	// for both "serving" and degraded "recovering" shards.
	Serving bool `json:"serving"`
	// Fenced is whether the shard is write-fenced for a migration
	// hand-off (reads still serve).
	Fenced         bool    `json:"fenced,omitempty"`
	QueueLen       int     `json:"queue_len"`
	Gets           uint64  `json:"gets"`
	Puts           uint64  `json:"puts"`
	Misses         uint64  `json:"misses"`
	Flushes        uint64  `json:"flushes"`
	Checkpoints    uint64  `json:"checkpoints"`
	Recoveries     uint64  `json:"recoveries"`
	Failures       uint64  `json:"failures"`
	HealAttempts   uint64  `json:"heal_attempts"`
	Heals          uint64  `json:"heals"`
	RecoveringNack uint64  `json:"recovering_nacks"`
	DegradedWrites uint64  `json:"degraded_writes"`
	ProvisionalRds uint64  `json:"provisional_loads"`
	Overloads      uint64  `json:"overloads"`
	IntegrityErrs  uint64  `json:"integrity_errors"`
	OtherErrs      uint64  `json:"other_errors"`
	Batches        uint64  `json:"batches"`
	BatchItems     uint64  `json:"batch_items"`
	Epochs         uint64  `json:"epochs"`
	EpochOps       uint64  `json:"epoch_ops"`
	EpochFallback  uint64  `json:"epoch_fallbacks"`
	Migrations     uint64  `json:"migrations,omitempty"`
	FencedNacks    uint64  `json:"fenced_nacks,omitempty"`
	ConcurrentRds  uint64  `json:"concurrent_reads"`
	ReadRetries    uint64  `json:"read_retries"`
	ReadFallbacks  uint64  `json:"read_fallbacks"`
	ChaosRuns      uint64  `json:"chaos_runs"`
	RecoveryDone   uint64  `json:"recovery_leaves_done"`
	RecoveryTotal  uint64  `json:"recovery_leaves_total"`
	RecoveryWallMs float64 `json:"recovery_wall_ms"`
	Cycles         uint64  `json:"sim_cycles"`
	DataReads      uint64  `json:"data_reads"`
	DataWrites     uint64  `json:"data_writes"`
	MetaFetches    uint64  `json:"meta_fetches"`
	PostedWrites   uint64  `json:"posted_writes"`
	StallCycles    uint64  `json:"stall_cycles"`
	MergedWrites   uint64  `json:"merged_writes"`
}

// Snapshot is the whole store's published state.
type Snapshot struct {
	// Partitions is the global partition count; Shards holds only the
	// partitions this store hosts (cluster mode), keyed by id.
	Partitions int             `json:"partitions"`
	Shards     []ShardSnapshot `json:"shards"`
	// Staging lists partitions with an inbound migration attached but
	// not yet activated.
	Staging   []int  `json:"staging,omitempty"`
	Ops       uint64 `json:"ops"`
	Overloads uint64 `json:"overloads"`
}

// Stats returns the current published counters for every shard plus
// aggregates. Safe to call from any goroutine.
func (s *Store) Stats() Snapshot {
	shards := s.table().list
	out := Snapshot{
		Partitions: s.cfg.Partitions,
		Shards:     make([]ShardSnapshot, len(shards)),
		Overloads:  s.overloads.Load(),
	}
	if st := s.Staging(); len(st) > 0 {
		out.Staging = st
	}
	for i, sh := range shards {
		m := &sh.m
		health := shardHealth(sh.health.Load())
		ss := ShardSnapshot{
			Shard:          sh.id,
			Health:         health.String(),
			Serving:        health != healthQuarantined,
			Fenced:         sh.fenced.Load(),
			QueueLen:       len(sh.ch),
			Gets:           m.gets.Load(),
			Puts:           m.puts.Load(),
			Misses:         m.misses.Load(),
			Flushes:        m.flushes.Load(),
			Checkpoints:    m.checkpoints.Load(),
			Recoveries:     m.recoveries.Load(),
			Failures:       m.failures.Load(),
			HealAttempts:   m.healAttempts.Load(),
			Heals:          m.heals.Load(),
			RecoveringNack: m.recoveringNacks.Load(),
			DegradedWrites: m.degradedWrites.Load(),
			ProvisionalRds: m.provisionalLoads.Load(),
			Overloads:      m.overloads.Load(),
			IntegrityErrs:  m.integrityErrs.Load(),
			OtherErrs:      m.otherErrs.Load(),
			Batches:        m.batches.Load(),
			BatchItems:     m.batchItems.Load(),
			Epochs:         m.epochs.Load(),
			EpochOps:       m.epochOps.Load(),
			EpochFallback:  m.epochFallbacks.Load(),
			Migrations:     m.migrations.Load(),
			FencedNacks:    m.fencedNacks.Load(),
			ConcurrentRds:  m.concurrentReads.Load(),
			ReadRetries:    m.readRetries.Load(),
			ReadFallbacks:  m.readFallbacks.Load(),
			ChaosRuns:      m.chaosRuns.Load(),
			Cycles:         m.cycles.Load(),
			DataReads:      m.dataReads.Load(),
			DataWrites:     m.dataWrites.Load(),
			MetaFetches:    m.metaFetches.Load(),
			PostedWrites:   m.postedWrites.Load(),
			StallCycles:    m.stallCycles.Load(),
			MergedWrites:   m.mergedWrites.Load(),
		}
		if ps := sh.prog.Snapshot(); ps.Total > 0 {
			ss.RecoveryDone = ps.Done
			ss.RecoveryTotal = ps.Total
			ss.RecoveryWallMs = float64(ps.WallNs) / 1e6
		}
		out.Shards[i] = ss
		out.Ops += ss.Gets + ss.Puts
	}
	return out
}

// sum folds one atomic counter across currently hosted shards.
func (s *Store) sum(pick func(*shardMetrics) *atomic.Uint64) uint64 {
	var t uint64
	for _, sh := range s.table().list {
		t += pick(&sh.m).Load()
	}
	return t
}

// RegisterMetrics adds per-shard and aggregate store columns to reg.
// Every column reads only published atomics or channel lengths, so
// sampling never races the shard workers. Per-shard columns are
// minted for the partitions hosted at registration time; partitions
// that attach later feed the aggregate columns (which read the live
// table) but get no dedicated columns until the next restart.
func (s *Store) RegisterMetrics(reg *telemetry.Registry) {
	for _, sh := range s.table().list {
		sh := sh
		p := fmt.Sprintf("store.shard%d", sh.id)
		reg.Counter(p+".gets", "get requests served", sh.m.gets.Load)
		reg.Counter(p+".puts", "put requests served", sh.m.puts.Load)
		reg.Counter(p+".misses", "gets of never-written keys", sh.m.misses.Load)
		reg.Counter(p+".overloads", "requests rejected by the bounded queue", sh.m.overloads.Load)
		reg.Counter(p+".integrity_errors", "requests failed on integrity violations", sh.m.integrityErrs.Load)
		reg.Counter(p+".recoveries", "successful power-cycle recoveries", sh.m.recoveries.Load)
		reg.Counter(p+".epochs", "group-commit epochs committed", sh.m.epochs.Load)
		reg.Counter(p+".epoch_ops", "writes committed through epochs", sh.m.epochOps.Load)
		reg.Counter(p+".epoch_fallbacks", "epoch commits degraded to per-op replay", sh.m.epochFallbacks.Load)
		reg.Histogram(p+".epoch_size", "staged writes per committed epoch", sh.epochSizeHistogram)
		reg.Histogram(p+".epoch_kcycles", "epoch commit latency (256-cycle buckets)", sh.epochCycleHistogram)
		reg.Counter(p+".chaos_runs", "chaos injections executed", sh.m.chaosRuns.Load)
		reg.Counter(p+".sim_cycles", "simulated cycles consumed", sh.m.cycles.Load)
		reg.Counter(p+".data_reads", "verified data block reads", sh.m.dataReads.Load)
		reg.Counter(p+".data_writes", "encrypted data block writes", sh.m.dataWrites.Load)
		reg.Counter(p+".meta_fetches", "metadata blocks fetched from SCM", sh.m.metaFetches.Load)
		reg.Counter(p+".posted_writes", "posted SCM writes", sh.m.postedWrites.Load)
		reg.Counter(p+".stall_cycles", "write-queue stall cycles", sh.m.stallCycles.Load)
		reg.Gauge(p+".queue_len", "requests waiting in the shard queue", func() float64 {
			return float64(len(sh.ch))
		})
		reg.Gauge(p+".recovery_leaves_done", "BMT leaves rebuilt by the latest recovery", func() float64 {
			return float64(sh.prog.Snapshot().Done)
		})
		reg.Gauge(p+".recovery_leaves_total", "BMT leaves the latest recovery must rebuild", func() float64 {
			return float64(sh.prog.Snapshot().Total)
		})
		reg.Gauge(p+".recovery_active", "1 while a recovery rebuild is in flight", func() float64 {
			if sh.prog.Snapshot().Active {
				return 1
			}
			return 0
		})
		reg.Gauge(p+".recovery_wall_ms", "wall time of the latest completed recovery, ms", func() float64 {
			return float64(sh.prog.Snapshot().WallNs) / 1e6
		})
		reg.Counter(p+".failures", "recovery-contract violations that quarantined the shard", sh.m.failures.Load)
		reg.Counter(p+".heal_attempts", "supervised heal attempts on the quarantined shard", sh.m.healAttempts.Load)
		reg.Counter(p+".heals", "heal attempts that restored service", sh.m.heals.Load)
		reg.Counter(p+".recovering_nacks", "requests nacked with ErrRecovering", sh.m.recoveringNacks.Load)
		reg.Counter(p+".degraded_writes", "writes served during recovery sessions (climb deferred)", sh.m.degradedWrites.Load)
		reg.Counter(p+".provisional_loads", "counter leaves loaded provisionally during recovery sessions", sh.m.provisionalLoads.Load)
		reg.Gauge(p+".serving", "1 while the shard accepts requests", func() float64 {
			if shardHealth(sh.health.Load()) == healthQuarantined {
				return 0
			}
			return 1
		})
		reg.Gauge(p+".health", "serving state: 0 serving, 1 recovering, 2 quarantined", func() float64 {
			return float64(sh.health.Load())
		})
		reg.Counter(p+".concurrent_reads", "gets served off the concurrent read view", sh.m.concurrentReads.Load)
		reg.Counter(p+".read_retries", "read-view snapshot retries on seq conflicts", sh.m.readRetries.Load)
		reg.Counter(p+".read_fallbacks", "read-view attempts abandoned to the queue path", sh.m.readFallbacks.Load)
	}
	reg.Counter("store.gets", "get requests served, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.gets })
	})
	reg.Counter("store.puts", "put requests served, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.puts })
	})
	reg.Counter("store.overloads", "requests rejected by bounded queues", s.overloads.Load)
	reg.Counter("store.integrity_errors", "integrity violations surfaced to clients", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.integrityErrs })
	})
	reg.Counter("store.batch_items", "requests drained in batches", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.batchItems })
	})
	reg.Counter("store.batches", "worker batch wakeups", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.batches })
	})
	reg.Counter("store.epochs", "group-commit epochs committed, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.epochs })
	})
	reg.Counter("store.epoch_ops", "writes committed through epochs, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.epochOps })
	})
	reg.Counter("store.epoch_fallbacks", "epoch commits degraded to per-op replay", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.epochFallbacks })
	})
	reg.Counter("store.concurrent_reads", "gets served off the concurrent read view, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.concurrentReads })
	})
	reg.Counter("store.read_retries", "read-view snapshot retries on seq conflicts, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.readRetries })
	})
	reg.Counter("store.read_fallbacks", "read-view attempts abandoned to the queue path, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.readFallbacks })
	})
	reg.Gauge("store.recovery_leaves_done", "BMT leaves rebuilt by the latest recoveries, all shards", func() float64 {
		var n uint64
		for _, sh := range s.table().list {
			n += sh.prog.Snapshot().Done
		}
		return float64(n)
	})
	reg.Gauge("store.recovery_leaves_total", "BMT leaves the latest recoveries must rebuild, all shards", func() float64 {
		var n uint64
		for _, sh := range s.table().list {
			n += sh.prog.Snapshot().Total
		}
		return float64(n)
	})
	reg.Gauge("store.recoveries_active", "shards with a recovery rebuild in flight", func() float64 {
		var n float64
		for _, sh := range s.table().list {
			if sh.prog.Snapshot().Active {
				n++
			}
		}
		return n
	})
	reg.Gauge("store.shards_serving", "shards currently in service", func() float64 {
		var n float64
		for _, sh := range s.table().list {
			if shardHealth(sh.health.Load()) != healthQuarantined {
				n++
			}
		}
		return n
	})
	reg.Gauge("store.shards_recovering", "shards with a rebuild in flight", func() float64 {
		var n float64
		for _, sh := range s.table().list {
			if shardHealth(sh.health.Load()) == healthRecovering {
				n++
			}
		}
		return n
	})
	reg.Gauge("store.shards_quarantined", "shards waiting on the heal loop", func() float64 {
		var n float64
		for _, sh := range s.table().list {
			if shardHealth(sh.health.Load()) == healthQuarantined {
				n++
			}
		}
		return n
	})
	reg.Counter("store.heal_attempts", "supervised heal attempts, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.healAttempts })
	})
	reg.Counter("store.heals", "heal attempts that restored service, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.heals })
	})
	reg.Counter("store.degraded_writes", "writes served during recovery sessions, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.degradedWrites })
	})
	reg.Counter("store.recovering_nacks", "requests nacked with ErrRecovering, all shards", func() uint64 {
		return s.sum(func(m *shardMetrics) *atomic.Uint64 { return &m.recoveringNacks })
	})
}

// epochSizeHistogram returns a race-free clone of the shard's
// epoch-size distribution.
func (sh *shard) epochSizeHistogram() *stats.Histogram {
	sh.histMu.Lock()
	defer sh.histMu.Unlock()
	return sh.epochSizes.Clone()
}

// epochCycleHistogram returns a race-free clone of the shard's
// epoch commit-latency distribution (256-cycle buckets).
func (sh *shard) epochCycleHistogram() *stats.Histogram {
	sh.histMu.Lock()
	defer sh.histMu.Unlock()
	return sh.epochCycles.Clone()
}

// TotalCycles returns the largest published shard clock — the store's
// simulated-time high-water mark, used as the sample cycle.
func (s *Store) TotalCycles() uint64 {
	var max uint64
	for _, sh := range s.table().list {
		if c := sh.m.cycles.Load(); c > max {
			max = c
		}
	}
	return max
}
