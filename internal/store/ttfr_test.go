package store

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"
)

// -ttfrjson merges degraded-boot time-to-first-request measurements
// into an existing BENCH_recovery.json (creating the file if absent).
// The bmt rebuild benchmark writes the base document; this appender
// adds the serving-path view: how long a cold store takes to answer
// its first request while the tree rebuild proceeds in the
// background, at several shard leaf counts.
var ttfrJSON = flag.String("ttfrjson", "", "merge time-to-first-request results into this BENCH_recovery.json")

// ttfrEntry is one (protocol, shard size) measurement. TTFR is the
// wall time from store.Open to the first successful GET (open_us,
// the checkpoint-image load, is included and reported separately);
// the recovery wall is Open until the shard reports "serving"
// (rebuild complete). The seeded key count is held constant across
// shard sizes so the checkpoint image — and therefore the open cost
// — stays fixed while the occupied counter-leaf count scales 16x.
// Degraded serving is working iff TTFR stays flat while the
// recovery wall grows with the leaf count.
type ttfrEntry struct {
	Protocol      string `json:"protocol"`
	ShardMemBytes uint64 `json:"shard_mem_bytes"`
	CounterLeaves uint64 `json:"counter_leaves"`
	SeededBlocks  uint64 `json:"seeded_blocks"`
	// OpenUs is store.Open alone: simulated-SCM allocation (O(mem),
	// paid identically by a blocking boot) plus the checkpoint-image
	// load (O(seeded blocks), held constant here).
	OpenUs int64 `json:"open_us"`
	// FirstGetUs is the first GET after Open returns — the
	// serving-readiness cost degraded mode is responsible for. It
	// must not scale with CounterLeaves.
	FirstGetUs int64 `json:"first_get_us"`
	TTFRUs     int64 `json:"ttfr_us"`
	RecoveryUs int64 `json:"recovery_wall_us"`
}

// TestWriteTTFRBench measures degraded-boot time-to-first-request at
// two shard sizes (16x apart in counter-leaf count) and merges the
// results into the BENCH_recovery.json named by -ttfrjson. Skipped
// unless the flag is set:
//
//	go test ./internal/store -run TestWriteTTFRBench -ttfrjson BENCH_recovery.json
func TestWriteTTFRBench(t *testing.T) {
	if *ttfrJSON == "" {
		t.Skip("set -ttfrjson to write the TTFR benchmark document")
	}
	ctx := context.Background()
	var entries []ttfrEntry
	for _, proto := range []string{"leaf", "amnt"} {
		for _, mem := range []uint64{1 << 20, 16 << 20} {
			cfg := Config{
				Shards:        1,
				ShardMemBytes: mem,
				Protocol:      proto,
				QueueDepth:    64,
				BatchMax:      16,
				CheckpointDir: t.TempDir(),
				RecoveryChunk: 64,
			}
			// Seed a fixed number of blocks, spread evenly so every
			// counter leaf is occupied: the checkpoint image (and so
			// the open cost) is identical across sizes while the
			// rebuild spans 16x more leaves at the larger one.
			s, err := Open(cfg)
			if err != nil {
				t.Fatalf("%s/%d open: %v", proto, mem, err)
			}
			blocks := mem / 64
			const seeded = 4096
			stride := blocks / seeded
			for b := uint64(0); b < blocks; b += stride {
				if err := s.Put(ctx, b, []byte("ttfr-seed")); err != nil {
					t.Fatalf("%s/%d seed put %d: %v", proto, mem, b, err)
				}
			}
			if err := s.Close(ctx); err != nil {
				t.Fatalf("%s/%d close: %v", proto, mem, err)
			}

			best := ttfrEntry{
				Protocol:      proto,
				ShardMemBytes: mem,
				CounterLeaves: blocks / 64,
				SeededBlocks:  seeded,
			}
			for trial := 0; trial < 5; trial++ {
				t0 := time.Now()
				s2, err := Open(cfg)
				if err != nil {
					t.Fatalf("%s/%d reopen: %v", proto, mem, err)
				}
				open := time.Since(t0).Microseconds()
				if _, err := s2.Get(ctx, 0); err != nil {
					t.Fatalf("%s/%d first get: %v", proto, mem, err)
				}
				ttfr := time.Since(t0).Microseconds()
				for s2.Stats().Shards[0].Health != "serving" {
					time.Sleep(20 * time.Microsecond)
				}
				wall := time.Since(t0).Microseconds()
				if err := s2.Close(ctx); err != nil {
					t.Fatalf("%s/%d close after trial: %v", proto, mem, err)
				}
				if trial == 0 || ttfr < best.TTFRUs {
					best.OpenUs, best.FirstGetUs, best.TTFRUs = open, ttfr-open, ttfr
				}
				if trial == 0 || wall < best.RecoveryUs {
					best.RecoveryUs = wall
				}
			}
			entries = append(entries, best)
			t.Logf("%s mem=%dMiB leaves=%d: open=%dµs first_get=%dµs ttfr=%dµs recovery_wall=%dµs",
				proto, mem>>20, best.CounterLeaves, best.OpenUs, best.FirstGetUs, best.TTFRUs, best.RecoveryUs)
		}
	}

	// Merge into the existing benchmark document (the bmt rebuild
	// benchmark owns the rest of the file) rather than clobbering it.
	doc := map[string]any{}
	if raw, err := os.ReadFile(*ttfrJSON); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("existing %s is not JSON: %v", *ttfrJSON, err)
		}
	}
	doc["ttfr"] = map[string]any{
		"note": "degraded-boot time to first request: ttfr_us = open_us (SCM allocation + checkpoint-image load, identical under a blocking boot) + first_get_us (the serving-readiness delta degraded mode controls). first_get_us stays flat across a 16x counter-leaf spread while recovery_wall_us tracks the background rebuild; best of 5 trials, single shard, recovery chunk 64 leaves, constant seeded-block count",
		"goos": runtime.GOOS, "goarch": runtime.GOARCH, "cpus": runtime.NumCPU(),
		"entries": entries,
	}
	f, err := os.Create(*ttfrJSON)
	if err != nil {
		t.Fatalf("create %s: %v", *ttfrJSON, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", *ttfrJSON, err)
	}
}
