package store

import (
	"context"
	"sync"

	"amnt/internal/telemetry/span"
)

// absorbSlowest folds the slowest (critical-path) leg of a fan-out
// round into the parent span, so the parent's phase sum still
// decomposes the client-visible wall time, and marks the parent as a
// multi-shard request when more than one shard served it.
func absorbSlowest(parent *span.Span, legs []*span.Span) {
	if parent == nil || len(legs) == 0 {
		return
	}
	slowest := legs[0]
	for _, l := range legs[1:] {
		if l.End() > slowest.End() {
			slowest = l
		}
	}
	parent.Absorb(slowest)
	if len(legs) == 1 {
		// A batch that happened to route to one shard is attributable
		// to it; a true fan-out stays -1 ("multi").
		parent.SetShard(slowest.Shard())
	}
}

// KV is one key/value pair of a batched put.
type KV struct {
	Key   uint64
	Value []byte
}

// PutBatch stores every pair in kvs, submitting one multi-op request
// per shard (fan-out/fan-in) instead of one queue round-trip per key —
// the client-side expression of a group-commit epoch. The result is
// one error per input pair, nil on success; a shard-level failure
// (ErrOverloaded, ErrClosed, ErrShardFailed, context expiry) is
// reported on every key routed to that shard. Values are copied;
// callers may reuse their buffers. Acknowledgment semantics match Put:
// a nil error means the write is durable to the same degree a per-op
// acknowledged write is.
func (s *Store) PutBatch(ctx context.Context, kvs []KV) []error {
	errs := make([]error, len(kvs))
	type shardPut struct {
		pairs []kvPair
		idx   []int // original positions, parallel to pairs
	}
	group := make(map[*shard]*shardPut)
	var order []*shard
	for i, kv := range kvs {
		if len(kv.Value) > MaxValueLen {
			errs[i] = ErrValueTooLarge
			continue
		}
		sh, block, err := s.shardFor(kv.Key)
		if err != nil {
			errs[i] = err
			continue
		}
		if block >= sh.blocks {
			errs[i] = ErrOutOfRange
			continue
		}
		g := group[sh]
		if g == nil {
			g = &shardPut{}
			group[sh] = g
			order = append(order, sh)
		}
		v := make([]byte, len(kv.Value))
		copy(v, kv.Value)
		g.pairs = append(g.pairs, kvPair{block: block, value: v})
		g.idx = append(g.idx, i)
	}
	parent := span.FromContext(ctx)
	legs := make([]*span.Span, 0, len(order))
	var wg sync.WaitGroup
	for _, sh := range order {
		g := group[sh]
		leg := parent.Leg()
		legs = append(legs, leg)
		wg.Add(1)
		go func(sh *shard, g *shardPut, leg *span.Span) {
			defer wg.Done()
			resp, err := s.submit(ctx, sh, request{op: opPutMulti, kvs: g.pairs, sp: leg, resp: make(chan response, 1)})
			leg.End()
			for j, i := range g.idx {
				if err != nil {
					errs[i] = err
					continue
				}
				errs[i] = resp.errs[j]
			}
		}(sh, g, leg)
	}
	wg.Wait()
	absorbSlowest(parent, legs)
	return errs
}

// GetBatch returns the values stored at keys, one multi-op request per
// shard. Results are parallel to keys: values[i] is non-nil exactly
// when errs[i] is nil; a missing key reports ErrNotFound, and a
// shard-level failure is reported on every key routed to that shard.
func (s *Store) GetBatch(ctx context.Context, keys []uint64) ([][]byte, []error) {
	values := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	type shardGet struct {
		blocks []uint64
		idx    []int
	}
	group := make(map[*shard]*shardGet)
	var order []*shard
	for i, key := range keys {
		sh, block, err := s.shardFor(key)
		if err != nil {
			errs[i] = err
			continue
		}
		if block >= sh.blocks {
			errs[i] = ErrOutOfRange
			continue
		}
		g := group[sh]
		if g == nil {
			g = &shardGet{}
			group[sh] = g
			order = append(order, sh)
		}
		g.blocks = append(g.blocks, block)
		g.idx = append(g.idx, i)
	}
	parent := span.FromContext(ctx)
	legs := make([]*span.Span, 0, len(order))
	var wg sync.WaitGroup
	for _, sh := range order {
		g := group[sh]
		leg := parent.Leg()
		legs = append(legs, leg)
		wg.Add(1)
		go func(sh *shard, g *shardGet, leg *span.Span) {
			defer wg.Done()
			// Reader-pool fast path: serve the whole leg off the read
			// view, then queue only the blocks it could not serve.
			if vals, ves, leftover, served := s.serveLegConcurrent(ctx, sh, g.blocks, leg); served {
				for j, i := range g.idx {
					values[i], errs[i] = vals[j], ves[j]
				}
				if len(leftover) > 0 {
					blocks := make([]uint64, len(leftover))
					for k, j := range leftover {
						blocks[k] = g.blocks[j]
					}
					resp, err := s.submit(ctx, sh, request{op: opGetMulti, blocks: blocks, sp: leg, resp: make(chan response, 1)})
					for k, j := range leftover {
						i := g.idx[j]
						if err != nil {
							errs[i] = err
							continue
						}
						values[i], errs[i] = resp.values[k], resp.errs[k]
					}
				}
				leg.End()
				return
			}
			resp, err := s.submit(ctx, sh, request{op: opGetMulti, blocks: g.blocks, sp: leg, resp: make(chan response, 1)})
			leg.End()
			for j, i := range g.idx {
				if err != nil {
					errs[i] = err
					continue
				}
				values[i], errs[i] = resp.values[j], resp.errs[j]
			}
		}(sh, g, leg)
	}
	wg.Wait()
	absorbSlowest(parent, legs)
	return values, errs
}
