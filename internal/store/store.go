// Package store is the concurrent serving layer over the functional
// MEE stack: a key/value store sharded across N independent
// mee.Controller instances. Each shard's controller, device, and
// fault injector are owned by exactly one worker goroutine —
// respecting the Controller single-writer contract — and clients
// reach a shard only through a bounded request channel, so the store
// is safe for any number of concurrent callers while the protocol
// code underneath stays strictly sequential per shard.
//
// Keys are uint64, partitioned key % Shards (shard) and key / Shards
// (block within the shard). One key maps to one 64 B SCM block; the
// first byte encodes the value length, so values are limited to
// MaxValueLen bytes and an all-zero (never-written) block reads as
// ErrNotFound.
//
// Admission control: every request either enters its shard's bounded
// queue immediately or fails with ErrOverloaded — the store never
// blocks a caller on a full queue. Callers bound their wait for the
// response with a context deadline; an abandoned request still
// completes in the worker (responses are buffered), it just has
// nobody listening.
//
// Persist ordering: a Put is acknowledged after the shard's
// controller has run the full secure-write path (counter bump, MAC,
// tree update, persist policy). In the functional model queued
// persists reach the device at issue time (ADR semantics), so an
// acknowledged Put survives a clean power cycle under every
// crash-consistent protocol; the chaos path (chaos.go) explores the
// weaker model where the in-flight persist window can be torn,
// dropped, or reordered.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"amnt/internal/faults"
	"amnt/internal/mee"
	"amnt/internal/scm"
)

// MaxValueLen is the largest value a single key can hold: one SCM
// block minus the length byte.
const MaxValueLen = scm.BlockSize - 1

// Sentinel errors returned by the Store API.
var (
	// ErrOverloaded: the shard's bounded queue is full. Degradation
	// is explicit — callers retry or shed load; the store never
	// queues unboundedly.
	ErrOverloaded = errors.New("store: shard queue full")
	// ErrNotFound: the key has never been written.
	ErrNotFound = errors.New("store: key not found")
	// ErrClosed: the store is shut down.
	ErrClosed = errors.New("store: closed")
	// ErrValueTooLarge: the value exceeds MaxValueLen.
	ErrValueTooLarge = fmt.Errorf("store: value exceeds %d bytes", MaxValueLen)
	// ErrOutOfRange: the key maps past the shard's capacity.
	ErrOutOfRange = errors.New("store: key out of range")
	// ErrShardFailed: the shard's protocol broke its recovery
	// contract (chaos violation); it no longer serves requests.
	ErrShardFailed = errors.New("store: shard failed")
)

// Config sizes the store.
type Config struct {
	// Shards is the number of independent controllers. Default 4.
	Shards int
	// ShardMemBytes is each shard's SCM data capacity. Default 1 MiB.
	ShardMemBytes uint64
	// Protocol is the persistence policy name (mee registry).
	// Default "leaf".
	Protocol string
	// PolicyOptions parameterizes the protocol (subtree level etc.).
	PolicyOptions mee.PolicyOptions
	// MEE configures each shard's controller; zero fields take
	// mee.DefaultConfig values. MEE.RecoveryWorkers widens the BMT
	// rebuild pool every shard recovery uses (boot-from-checkpoint,
	// Recover, RecoverShard); recovered state and reported cycle
	// counts are bit-identical at any width.
	MEE mee.Config
	// QueueDepth bounds each shard's request queue. Default 64.
	QueueDepth int
	// BatchMax is the most requests a worker drains per wakeup.
	// Default 16.
	BatchMax int
	// CheckpointDir, when set, is where Checkpoint persists shard
	// images and where Open looks for them; Close writes a final
	// checkpoint there.
	CheckpointDir string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.ShardMemBytes == 0 {
		c.ShardMemBytes = 1 << 20
	}
	if c.Protocol == "" {
		c.Protocol = "leaf"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	return c
}

type opKind int

const (
	opGet opKind = iota
	opPut
	opFlush
	opCheckpoint
	opRecover
	opChaos
)

type request struct {
	op    opKind
	block uint64
	value []byte // put payload, owned by the request
	chaos *ChaosSpec
	resp  chan response // buffered(1): the worker's send never blocks
}

type response struct {
	value []byte
	chaos *ChaosResult
	err   error
}

// shard bundles everything one worker goroutine owns.
type shard struct {
	id       int
	dev      *scm.Device
	ctrl     *mee.Controller
	inj      *faults.Injector
	ch       chan request
	done     chan struct{}
	blocks   uint64 // data blocks this shard can hold
	now      uint64 // simulated cycle clock, worker-owned
	batchMax int
	ckpt     string // checkpoint path, "" = none
	failed   atomic.Bool
	closeErr error // final flush/checkpoint error, read after done
	m        shardMetrics
}

// Store is the concurrent front-end. All methods are safe for
// concurrent use.
type Store struct {
	cfg    Config
	shards []*shard

	mu     sync.RWMutex // guards closed vs. in-flight enqueues
	closed bool

	overloads atomic.Uint64
}

// Open builds the store: one device + controller + injector per
// shard. When cfg.CheckpointDir holds a checkpoint for a shard, the
// shard boots from it (load, then run the protocol's recovery — the
// reboot path); otherwise it starts empty. Workers take ownership of
// their shard when their goroutine starts.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		policy, err := mee.NewPolicy(cfg.Protocol, cfg.PolicyOptions)
		if err != nil {
			return nil, err
		}
		dev := scm.New(scm.Config{CapacityBytes: cfg.ShardMemBytes})
		ctrl := mee.New(dev, cfg.MEE, policy)
		sh := &shard{
			id:       i,
			dev:      dev,
			ctrl:     ctrl,
			ch:       make(chan request, cfg.QueueDepth),
			done:     make(chan struct{}),
			blocks:   cfg.ShardMemBytes / scm.BlockSize,
			batchMax: cfg.BatchMax,
		}
		if cfg.CheckpointDir != "" {
			sh.ckpt = filepath.Join(cfg.CheckpointDir, fmt.Sprintf("shard-%03d.ckpt", i))
			if err := sh.boot(); err != nil {
				return nil, fmt.Errorf("store: shard %d: %w", i, err)
			}
		}
		sh.inj = faults.NewInjector(ctrl)
		sh.inj.Attach()
		s.shards[i] = sh
	}
	for _, sh := range s.shards {
		go sh.run()
	}
	return s, nil
}

// boot loads the shard's checkpoint if one exists and runs the
// protocol's recovery, the normal reboot path.
func (sh *shard) boot() error {
	f, err := os.Open(sh.ckpt)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sh.ctrl.LoadCheckpoint(f); err != nil {
		return err
	}
	if _, err := sh.ctrl.Recover(sh.now); err != nil {
		return fmt.Errorf("recovery after checkpoint load: %w", err)
	}
	return nil
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor maps a key to its shard and block.
func (s *Store) shardFor(key uint64) (*shard, uint64) {
	n := uint64(len(s.shards))
	return s.shards[key%n], key / n
}

// submit enqueues req on sh, failing fast with ErrOverloaded on a
// full queue, then waits for the response or ctx. The closed check
// and the send share the read lock so Close (which holds the write
// lock while closing channels) can never race a send onto a closed
// channel.
func (s *Store) submit(ctx context.Context, sh *shard, req request) (response, error) {
	if sh.failed.Load() {
		return response{}, ErrShardFailed
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return response{}, ErrClosed
	}
	select {
	case sh.ch <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.overloads.Add(1)
		sh.m.overloads.Add(1)
		return response{}, ErrOverloaded
	}
	select {
	case resp := <-req.resp:
		return resp, resp.err
	case <-ctx.Done():
		// The worker still serves the request; the buffered response
		// channel absorbs its send.
		return response{}, ctx.Err()
	}
}

// Get returns the value stored at key.
func (s *Store) Get(ctx context.Context, key uint64) ([]byte, error) {
	sh, block := s.shardFor(key)
	if block >= sh.blocks {
		return nil, ErrOutOfRange
	}
	resp, err := s.submit(ctx, sh, request{op: opGet, block: block, resp: make(chan response, 1)})
	if err != nil {
		return nil, err
	}
	return resp.value, nil
}

// Put stores value (at most MaxValueLen bytes) at key.
func (s *Store) Put(ctx context.Context, key uint64, value []byte) error {
	if len(value) > MaxValueLen {
		return ErrValueTooLarge
	}
	sh, block := s.shardFor(key)
	if block >= sh.blocks {
		return ErrOutOfRange
	}
	v := make([]byte, len(value)) // callers may reuse their buffer
	copy(v, value)
	_, err := s.submit(ctx, sh, request{op: opPut, block: block, value: v, resp: make(chan response, 1)})
	return err
}

// broadcast sends one control op to every shard concurrently and
// waits for all responses (or ctx). The lowest-numbered failing
// shard's error wins.
func (s *Store) broadcast(ctx context.Context, op opKind) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			_, errs[i] = s.submit(ctx, sh, request{op: op, resp: make(chan response, 1)})
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Flush forces every shard's dirty metadata to SCM (a global persist
// barrier).
func (s *Store) Flush(ctx context.Context) error { return s.broadcast(ctx, opFlush) }

// Checkpoint persists every shard's durable image to
// Config.CheckpointDir. Each shard flushes first, so the checkpoint
// is self-consistent.
func (s *Store) Checkpoint(ctx context.Context) error {
	if s.cfg.CheckpointDir == "" {
		return errors.New("store: no checkpoint dir configured")
	}
	return s.broadcast(ctx, opCheckpoint)
}

// Recover power-cycles every shard in place: crash (volatile state
// lost), run the protocol's recovery, and verify the whole shard. A
// crash-consistent protocol must come back serving every
// acknowledged write.
func (s *Store) Recover(ctx context.Context) error { return s.broadcast(ctx, opRecover) }

// RecoverShard power-cycles a single shard.
func (s *Store) RecoverShard(ctx context.Context, id int) error {
	if id < 0 || id >= len(s.shards) {
		return fmt.Errorf("store: no shard %d", id)
	}
	_, err := s.submit(ctx, s.shards[id], request{op: opRecover, resp: make(chan response, 1)})
	return err
}

// Close drains every shard's queue, flushes, writes a final
// checkpoint (when a checkpoint dir is configured), and stops the
// workers. ctx bounds the wait. Idempotent.
func (s *Store) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.mu.Unlock()
	var firstErr error
	for _, sh := range s.shards {
		select {
		case <-sh.done:
			if sh.closeErr != nil && firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", sh.id, sh.closeErr)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return firstErr
}

// --- worker -----------------------------------------------------------

// run is the shard worker: it owns the controller. Requests are
// drained in batches — one blocking receive, then up to batchMax-1
// opportunistic ones — so bursty load amortizes the per-wakeup
// bookkeeping and metrics publication.
func (sh *shard) run() {
	defer close(sh.done)
	batch := make([]request, 0, sh.batchMax)
	open := true
	for open {
		req, ok := <-sh.ch
		if !ok {
			break
		}
		batch = append(batch[:0], req)
	fill:
		for len(batch) < sh.batchMax {
			select {
			case r, ok := <-sh.ch:
				if !ok {
					open = false
					break fill
				}
				batch = append(batch, r)
			default:
				break fill
			}
		}
		for _, r := range batch {
			r.resp <- sh.serve(r)
		}
		sh.m.batches.Add(1)
		sh.m.batchItems.Add(uint64(len(batch)))
		sh.publish()
	}
	// Shutdown: queue fully drained above; leave a durable image.
	if !sh.failed.Load() {
		sh.now += sh.ctrl.Flush(sh.now)
		if sh.ckpt != "" {
			sh.closeErr = sh.checkpoint()
		}
	}
	sh.publish()
}

// serve executes one request against the worker-owned controller.
func (sh *shard) serve(r request) response {
	if sh.failed.Load() {
		return response{err: ErrShardFailed}
	}
	switch r.op {
	case opGet:
		var blk [scm.BlockSize]byte
		cycles, err := sh.ctrl.ReadBlock(sh.now, r.block, blk[:])
		sh.now += cycles
		sh.m.gets.Add(1)
		if err != nil {
			sh.countErr(err)
			return response{err: err}
		}
		n := int(blk[0])
		if n == 0 {
			sh.m.misses.Add(1)
			return response{err: ErrNotFound}
		}
		v := make([]byte, n-1)
		copy(v, blk[1:n])
		return response{value: v}
	case opPut:
		var blk [scm.BlockSize]byte
		blk[0] = byte(len(r.value) + 1)
		copy(blk[1:], r.value)
		cycles, err := sh.ctrl.WriteBlock(sh.now, r.block, blk[:])
		sh.now += cycles
		sh.m.puts.Add(1)
		if err != nil {
			sh.countErr(err)
		}
		return response{err: err}
	case opFlush:
		sh.now += sh.ctrl.Flush(sh.now)
		sh.m.flushes.Add(1)
		return response{}
	case opCheckpoint:
		if err := sh.checkpoint(); err != nil {
			return response{err: err}
		}
		sh.m.checkpoints.Add(1)
		return response{}
	case opRecover:
		return response{err: sh.powerCycle()}
	case opChaos:
		res := sh.runChaos(*r.chaos)
		return response{chaos: res, err: res.startErr}
	}
	return response{err: fmt.Errorf("store: unknown op %d", r.op)}
}

// powerCycle crashes the shard's controller and runs the protocol's
// recovery plus a whole-shard verify — the clean reboot invariant.
// The injector is detached across the cycle so recovery traffic does
// not pollute the fault journal.
func (sh *shard) powerCycle() error {
	sh.inj.Detach()
	sh.ctrl.Crash()
	if _, err := sh.ctrl.Recover(sh.now); err != nil {
		sh.fail()
		return fmt.Errorf("%w: recovery: %v", ErrShardFailed, err)
	}
	if err := sh.ctrl.VerifyAll(sh.now); err != nil {
		sh.fail()
		return fmt.Errorf("%w: post-recovery verify: %v", ErrShardFailed, err)
	}
	sh.m.recoveries.Add(1)
	sh.inj = faults.NewInjector(sh.ctrl)
	sh.inj.Attach()
	return nil
}

// checkpoint writes the shard's durable image atomically
// (temp + rename), so a crash mid-checkpoint leaves the previous
// image intact.
func (sh *shard) checkpoint() error {
	if err := os.MkdirAll(filepath.Dir(sh.ckpt), 0o755); err != nil {
		return err
	}
	tmp := sh.ckpt + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sh.ctrl.SaveCheckpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, sh.ckpt)
}

func (sh *shard) fail() {
	sh.failed.Store(true)
	sh.m.failures.Add(1)
}

func (sh *shard) countErr(err error) {
	var ie *mee.IntegrityError
	if errors.As(err, &ie) {
		sh.m.integrityErrs.Add(1)
		return
	}
	sh.m.otherErrs.Add(1)
}
