// Package store is the concurrent serving layer over the functional
// MEE stack: a key/value store sharded across N independent
// mee.Controller instances. Each shard's controller, device, and
// fault injector are owned by exactly one worker goroutine —
// respecting the Controller single-writer contract — and clients
// reach a shard only through a bounded request channel, so the store
// is safe for any number of concurrent callers while the protocol
// code underneath stays strictly sequential per shard.
//
// Keys are uint64, partitioned key % Partitions (shard) and
// key / Partitions (block within the shard). One key maps to one 64 B
// SCM block; the first byte encodes the value length, so values are
// limited to MaxValueLen bytes and an all-zero (never-written) block
// reads as ErrNotFound.
//
// Cluster mode: the partition space may be wider than the set of
// shards one store hosts (Config.Owned). A key whose partition is not
// hosted here fails with a NotOwnedError naming the partition, so the
// serving layer can answer with an ownership hint instead of a
// retryable 5xx. Partitions can be detached from one store and
// attached to another at runtime through the migration API
// (migrate.go): the shard table is copy-on-write behind an atomic
// pointer, so routing reads never take a lock.
//
// Admission control: every request either enters its shard's bounded
// queue immediately or fails with ErrOverloaded — the store never
// blocks a caller on a full queue. Callers bound their wait for the
// response with a context deadline; an abandoned request still
// completes in the worker (responses are buffered), it just has
// nobody listening.
//
// Persist ordering: a Put is acknowledged after the shard's
// controller has run the full secure-write path (counter bump, MAC,
// tree update, persist policy). In the functional model queued
// persists reach the device at issue time (ADR semantics), so an
// acknowledged Put survives a clean power cycle under every
// crash-consistent protocol; the chaos path (chaos.go) explores the
// weaker model where the in-flight persist window can be torn,
// dropped, or reordered.
package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amnt/internal/bmt"
	"amnt/internal/faults"
	"amnt/internal/mee"
	"amnt/internal/scm"
	"amnt/internal/stats"
	"amnt/internal/telemetry/span"
)

// MaxValueLen is the largest value a single key can hold: one SCM
// block minus the length byte.
const MaxValueLen = scm.BlockSize - 1

// Sentinel errors returned by the Store API.
var (
	// ErrOverloaded: the shard's bounded queue is full. Degradation
	// is explicit — callers retry or shed load; the store never
	// queues unboundedly.
	ErrOverloaded = errors.New("store: shard queue full")
	// ErrNotFound: the key has never been written.
	ErrNotFound = errors.New("store: key not found")
	// ErrClosed: the store is shut down.
	ErrClosed = errors.New("store: closed")
	// ErrValueTooLarge: the value exceeds MaxValueLen.
	ErrValueTooLarge = fmt.Errorf("store: value exceeds %d bytes", MaxValueLen)
	// ErrOutOfRange: the key maps past the shard's capacity.
	ErrOutOfRange = errors.New("store: key out of range")
	// ErrShardFailed: the shard's protocol broke its recovery
	// contract (chaos violation); it is quarantined and nacks
	// requests until the heal loop restores it.
	ErrShardFailed = errors.New("store: shard failed")
	// ErrRecovering: the shard is rebuilding its integrity tree and
	// this request cannot be served yet. Degraded-capable shards keep
	// serving through a rebuild, so this surfaces only when the shard
	// is mid-recovery without online support, or when a request needs
	// metadata that is genuinely not yet reconstructible. Retryable.
	ErrRecovering = errors.New("store: shard recovering")
	// ErrNotOwned: the key's partition is not hosted by this store.
	// Routing-layer callers match NotOwnedError for the partition id.
	ErrNotOwned = errors.New("store: partition not owned")
	// ErrFenced: the partition is write-fenced for the final hand-off
	// step of a live migration. Reads still serve; writes must retry
	// (the fence lasts one delta-replay round, typically
	// milliseconds) and land on the new owner.
	ErrFenced = errors.New("store: partition write-fenced for migration")
)

// NotOwnedError reports a request routed to a store that does not
// host the key's partition. It unwraps to ErrNotOwned.
type NotOwnedError struct {
	Partition int
}

func (e *NotOwnedError) Error() string {
	return fmt.Sprintf("store: partition %d not owned", e.Partition)
}

// Is makes errors.Is(err, ErrNotOwned) true for NotOwnedError.
func (e *NotOwnedError) Is(target error) bool { return target == ErrNotOwned }

// shardHealth is the shard's serving state, published for lock-free
// reads by submit and the metrics samplers.
type shardHealth int32

const (
	// healthServing: normal operation.
	healthServing shardHealth = iota
	// healthRecovering: the tree is rebuilding. Degraded-capable
	// shards still accept requests (sh.degraded); others nack with
	// ErrRecovering until the blocking recovery completes.
	healthRecovering
	// healthQuarantined: the recovery contract was violated; the
	// shard nacks everything while the heal loop retries.
	healthQuarantined
)

func (h shardHealth) String() string {
	switch h {
	case healthServing:
		return "serving"
	case healthRecovering:
		return "recovering"
	case healthQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// Config sizes the store.
type Config struct {
	// Shards is the number of independent controllers. Default 4.
	// When Partitions/Owned are unset this is also the partition
	// count, preserving the single-node key layout.
	Shards int
	// Partitions is the global partition count keys are hashed over
	// (key % Partitions). In cluster mode every node and every
	// client must agree on it — it fixes the key→partition layout
	// independent of which node hosts which partition. 0 defaults to
	// Shards.
	Partitions int
	// Owned lists the partition ids this store hosts, each backed by
	// its own controller. nil means all partitions (the single-node
	// layout); an explicit empty slice opens a store with no shards,
	// valid for a node that will receive partitions by migration.
	Owned []int
	// ShardMemBytes is each shard's SCM data capacity. Default 1 MiB.
	ShardMemBytes uint64
	// Protocol is the persistence policy name (mee registry).
	// Default "leaf".
	Protocol string
	// PolicyOptions parameterizes the protocol (subtree level etc.).
	PolicyOptions mee.PolicyOptions
	// MEE configures each shard's controller; zero fields take
	// mee.DefaultConfig values. MEE.RecoveryWorkers widens the BMT
	// rebuild pool every shard recovery uses (boot-from-checkpoint,
	// Recover, RecoverShard); recovered state and reported cycle
	// counts are bit-identical at any width.
	MEE mee.Config
	// QueueDepth bounds each shard's request queue. Default 64.
	QueueDepth int
	// BatchMax is the most requests a worker drains per wakeup.
	// Default 16.
	BatchMax int
	// ReadConcurrency, when positive, serves gets on healthy shards
	// through a per-shard pool of at most this many concurrent
	// verified readers (mee.ReadBlockConcurrent on the caller's
	// goroutine), bypassing the write queue. Recovering, quarantined,
	// and detached shards, policies without pure read hooks, and
	// snapshot conflicts all fall back to the serialized queue path,
	// whose degradation semantics are unchanged. 0 (the default)
	// serializes every get through the owner goroutine.
	ReadConcurrency int
	// EpochMax is the most staged writes one group-commit integrity
	// epoch holds before the worker commits it. 1 disables group
	// commit entirely (every put runs the per-op write path); 0
	// defaults to BatchMax. A single multi-put request is never split
	// across epochs, so one oversized batch request may exceed the cap.
	EpochMax int
	// EpochWait is how long a worker with an under-full batch waits
	// for more requests to join the epoch once at least one put is
	// pending — the extra latency a put may pay to amortize the climb.
	// 0 commits as soon as the queue runs dry.
	EpochWait time.Duration
	// CheckpointDir, when set, is where Checkpoint persists shard
	// images and where Open looks for them; Close writes a final
	// checkpoint there. Checkpoint files are keyed by partition id,
	// so a cluster sharing one directory can hand partitions between
	// nodes through it (Adopt).
	CheckpointDir string
	// RecoveryChunk is how many BMT leaves an online recovery rebuilds
	// per idle worker wakeup. Smaller chunks bound the latency a
	// degraded request can queue behind; larger chunks finish the
	// rebuild sooner. Default 256.
	RecoveryChunk int
	// HealBackoff is the delay before a quarantined shard's first
	// heal attempt; each failed attempt doubles it up to
	// HealBackoffMax. Default 100ms.
	HealBackoff time.Duration
	// HealBackoffMax caps the heal backoff. Default 5s.
	HealBackoffMax time.Duration
	// HealMaxAttempts bounds heal attempts per quarantine episode.
	// 0 defaults to 8; negative disables healing entirely (a failed
	// shard stays down, the pre-heal behavior).
	HealMaxAttempts int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Shards
	}
	if c.Owned == nil {
		c.Owned = make([]int, c.Partitions)
		for i := range c.Owned {
			c.Owned[i] = i
		}
	}
	if c.ShardMemBytes == 0 {
		c.ShardMemBytes = 1 << 20
	}
	if c.Protocol == "" {
		c.Protocol = "leaf"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.EpochMax <= 0 {
		c.EpochMax = c.BatchMax
	}
	if c.RecoveryChunk <= 0 {
		c.RecoveryChunk = 256
	}
	if c.HealBackoff <= 0 {
		c.HealBackoff = 100 * time.Millisecond
	}
	if c.HealBackoffMax <= 0 {
		c.HealBackoffMax = 5 * time.Second
	}
	if c.HealMaxAttempts == 0 {
		c.HealMaxAttempts = 8
	}
	return c
}

type opKind int

const (
	opGet opKind = iota
	opPut
	opGetMulti
	opPutMulti
	opFlush
	opCheckpoint
	opRecover
	opChaos
	opQuarantine
	opMigrateBegin
	opMigrateFence
	opMigrateAbort
)

// kvPair is one key's share of a multi-put, already resolved to its
// shard-local block.
type kvPair struct {
	block uint64
	value []byte
}

type request struct {
	op     opKind
	ctx    context.Context // caller's context; expired requests are nacked, not served
	sp     *span.Span      // latency-attribution span (nil = untraced)
	block  uint64
	value  []byte   // put payload, owned by the request
	blocks []uint64 // multi-get blocks
	kvs    []kvPair // multi-put payload, owned by the request
	chaos  *ChaosSpec
	migBuf *bytes.Buffer // opMigrateBegin: checkpoint image sink
	resp   chan response // buffered(1): the worker's send never blocks
}

type response struct {
	value  []byte
	values [][]byte // multi-get results, parallel to request.blocks
	errs   []error  // per-entry multi-op results
	chaos  *ChaosResult
	err    error
}

// shard bundles everything one worker goroutine owns. Its id is the
// global partition id it hosts, not a dense local index.
type shard struct {
	id        int // partition id
	dev       *scm.Device
	ctrl      *mee.Controller
	inj       *faults.Injector
	ch        chan request
	done      chan struct{}
	blocks    uint64 // data blocks this shard can hold
	now       uint64 // simulated cycle clock, worker-owned
	batchMax  int
	epochMax  int
	epochWait time.Duration
	ckpt      string        // checkpoint path, "" = none
	prog      *bmt.Progress // live recovery rebuild watermark
	closeErr  error         // final flush/checkpoint error, read after done
	m         shardMetrics

	// readSem, when non-nil, bounds the concurrent verified readers
	// serving gets off this shard's read view from caller goroutines
	// (see readpath.go). Nil = every get goes through the queue.
	readSem chan struct{}

	// Serving state, read lock-free by submit and samplers; written
	// only by the worker (and by Open before the worker starts).
	health   atomic.Int32 // shardHealth
	degraded atomic.Bool  // recovering AND serving degraded traffic

	// Migration state. stopped marks a shard detached from the table
	// (set under the store write lock before its channel closes, so
	// submit can never send to it). fenced nacks writes during the
	// hand-off window; noFinalCkpt suppresses the shutdown checkpoint
	// of a detached shard so it cannot clobber the new owner's image.
	stopped     atomic.Bool
	fenced      atomic.Bool
	noFinalCkpt atomic.Bool

	// Write-delta journal, live while an outbound migration copies
	// this shard. The worker appends an entry at every put ack point
	// under migMu; MigrateDelta drains from another goroutine.
	// migActive mirrors migOn so the common no-migration put path
	// pays one atomic load, not a mutex.
	migActive   atomic.Bool
	migMu       sync.Mutex
	migOn       bool
	migLog      []DeltaOp
	migOverflow bool

	// Online-recovery session, worker-owned: the rebuild advances
	// recChunk leaves at a time whenever the queue is idle.
	session  *mee.RecoverySession
	recChunk int

	// Quarantine heal loop, worker-owned.
	healBackoff    time.Duration
	healBackoffMax time.Duration
	healMax        int
	healWait       time.Duration // current backoff
	healAt         time.Time     // next attempt due
	healTried      int           // attempts this episode

	// Epoch histograms, worker-written; readers clone under histMu.
	histMu      sync.Mutex
	epochSizes  *stats.Histogram // staged writes per committed epoch
	epochCycles *stats.Histogram // commit latency, 256-cycle buckets
}

// shardTable is the immutable partition→shard map. Mutations
// (migration attach/detach) build a new table under the store write
// lock and swap the pointer, so shardFor never locks.
type shardTable struct {
	parts map[int]*shard
	list  []*shard // sorted by partition id, for stable iteration
}

func newShardTable(shards []*shard) *shardTable {
	t := &shardTable{parts: make(map[int]*shard, len(shards))}
	for _, sh := range shards {
		t.parts[sh.id] = sh
	}
	t.list = append(t.list, shards...)
	sort.Slice(t.list, func(i, j int) bool { return t.list[i].id < t.list[j].id })
	return t
}

// with returns a copy of the table that also maps sh's partition.
func (t *shardTable) with(sh *shard) *shardTable {
	next := make([]*shard, 0, len(t.list)+1)
	next = append(next, t.list...)
	next = append(next, sh)
	return newShardTable(next)
}

// without returns a copy of the table minus one partition.
func (t *shardTable) without(part int) *shardTable {
	next := make([]*shard, 0, len(t.list))
	for _, sh := range t.list {
		if sh.id != part {
			next = append(next, sh)
		}
	}
	return newShardTable(next)
}

// Store is the concurrent front-end. All methods are safe for
// concurrent use.
type Store struct {
	cfg Config
	tab atomic.Pointer[shardTable]

	mu      sync.RWMutex // guards closed + table mutations vs. in-flight enqueues
	closed  bool
	staging map[int]*shard // inbound migrations not yet serving

	overloads atomic.Uint64
}

// table returns the current partition→shard map, lock-free.
func (s *Store) table() *shardTable { return s.tab.Load() }

// Open builds the store: one device + controller + injector per
// owned partition. When cfg.CheckpointDir holds a checkpoint for a
// partition, the shard boots from it (load, then run the protocol's
// recovery — the reboot path); otherwise it starts empty. Workers
// take ownership of their shard when their goroutine starts.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	seen := make(map[int]bool, len(cfg.Owned))
	for _, p := range cfg.Owned {
		if p < 0 || p >= cfg.Partitions {
			return nil, fmt.Errorf("store: owned partition %d out of range [0,%d)", p, cfg.Partitions)
		}
		if seen[p] {
			return nil, fmt.Errorf("store: partition %d owned twice", p)
		}
		seen[p] = true
	}
	s := &Store{cfg: cfg, staging: make(map[int]*shard)}
	shards := make([]*shard, 0, len(cfg.Owned))
	for _, p := range cfg.Owned {
		sh, err := s.newShard(p)
		if err != nil {
			return nil, err
		}
		if sh.ckpt != "" {
			if err := sh.boot(); err != nil {
				return nil, fmt.Errorf("store: shard %d: %w", p, err)
			}
		}
		// During a degraded boot the injector stays detached — recovery
		// traffic is not journaled — and attaches when the rebuild
		// completes, mirroring the power-cycle path.
		if sh.session == nil {
			sh.inj.Attach()
		}
		shards = append(shards, sh)
	}
	s.tab.Store(newShardTable(shards))
	for _, sh := range shards {
		go sh.run()
	}
	return s, nil
}

// newShard builds one partition's controller stack, not yet booted
// and with the injector detached.
func (s *Store) newShard(part int) (*shard, error) {
	cfg := s.cfg
	policy, err := mee.NewPolicy(cfg.Protocol, cfg.PolicyOptions)
	if err != nil {
		return nil, err
	}
	dev := scm.New(scm.Config{CapacityBytes: cfg.ShardMemBytes})
	ctrl := mee.New(dev, cfg.MEE, policy)
	sh := &shard{
		id:             part,
		dev:            dev,
		ctrl:           ctrl,
		ch:             make(chan request, cfg.QueueDepth),
		done:           make(chan struct{}),
		blocks:         cfg.ShardMemBytes / scm.BlockSize,
		batchMax:       cfg.BatchMax,
		epochMax:       cfg.EpochMax,
		epochWait:      cfg.EpochWait,
		epochSizes:     stats.NewHistogram(),
		epochCycles:    stats.NewHistogram(),
		prog:           &bmt.Progress{},
		recChunk:       cfg.RecoveryChunk,
		healBackoff:    cfg.HealBackoff,
		healBackoffMax: cfg.HealBackoffMax,
		healMax:        cfg.HealMaxAttempts,
	}
	if cfg.ReadConcurrency > 0 && ctrl.ConcurrentReadsSupported() {
		sh.readSem = make(chan struct{}, cfg.ReadConcurrency)
	}
	ctrl.SetRecoveryProgress(sh.prog)
	if cfg.CheckpointDir != "" {
		sh.ckpt = filepath.Join(cfg.CheckpointDir, fmt.Sprintf("shard-%03d.ckpt", part))
	}
	sh.inj = faults.NewInjector(ctrl)
	return sh, nil
}

// boot loads the shard's checkpoint if one exists and starts the
// protocol's recovery, the normal reboot path. When the protocol
// supports online recovery the shard comes up recovering+degraded and
// the worker rebuilds in the background — time-to-first-request is
// independent of the shard's leaf count. Otherwise boot blocks on the
// full rebuild as before.
func (sh *shard) boot() error {
	f, err := os.Open(sh.ckpt)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sh.ctrl.LoadCheckpoint(f); err != nil {
		return err
	}
	if s, ok := sh.ctrl.BeginRecovery(sh.now); ok {
		sh.session = s
		sh.health.Store(int32(healthRecovering))
		sh.degraded.Store(true)
		return nil
	}
	if _, err := sh.ctrl.Recover(sh.now); err != nil {
		return fmt.Errorf("recovery after checkpoint load: %w", err)
	}
	return nil
}

// Shards returns the number of partitions this store currently hosts.
func (s *Store) Shards() int { return len(s.table().list) }

// Partitions returns the global partition count keys are hashed over.
func (s *Store) Partitions() int { return s.cfg.Partitions }

// Owned returns the sorted partition ids this store currently hosts.
func (s *Store) Owned() []int {
	t := s.table()
	out := make([]int, len(t.list))
	for i, sh := range t.list {
		out[i] = sh.id
	}
	return out
}

// shardFor maps a key to its hosted shard and block, or a
// NotOwnedError naming the partition a different node hosts.
func (s *Store) shardFor(key uint64) (*shard, uint64, error) {
	p := int(key % uint64(s.cfg.Partitions))
	sh := s.table().parts[p]
	if sh == nil {
		return nil, 0, &NotOwnedError{Partition: p}
	}
	return sh, key / uint64(s.cfg.Partitions), nil
}

// lookup resolves a partition id to its hosted shard.
func (s *Store) lookup(id int) (*shard, error) {
	if id < 0 || id >= s.cfg.Partitions {
		return nil, fmt.Errorf("store: no shard %d", id)
	}
	sh := s.table().parts[id]
	if sh == nil {
		return nil, &NotOwnedError{Partition: id}
	}
	return sh, nil
}

// submit enqueues req on sh, failing fast with ErrOverloaded on a
// full queue, then waits for the response or ctx. The closed check
// and the send share the read lock so Close and MigrateDetach (which
// hold the write lock while closing channels) can never race a send
// onto a closed channel.
func (s *Store) submit(ctx context.Context, sh *shard, req request) (response, error) {
	switch shardHealth(sh.health.Load()) {
	case healthQuarantined:
		return response{}, ErrShardFailed
	case healthRecovering:
		// Degraded-capable shards keep admitting; a shard stuck in a
		// blocking rebuild fast-fails so callers can back off instead
		// of piling into the queue.
		if !sh.degraded.Load() {
			sh.m.recoveringNacks.Add(1)
			return response{}, ErrRecovering
		}
	}
	if sh.fenced.Load() && (req.op == opPut || req.op == opPutMulti) {
		sh.m.fencedNacks.Add(1)
		return response{}, ErrFenced
	}
	req.ctx = ctx
	if req.sp == nil {
		req.sp = span.FromContext(ctx)
	}
	req.sp.SetShard(sh.id)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return response{}, ErrClosed
	}
	if sh.stopped.Load() {
		s.mu.RUnlock()
		return response{}, &NotOwnedError{Partition: sh.id}
	}
	select {
	case sh.ch <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.overloads.Add(1)
		sh.m.overloads.Add(1)
		return response{}, ErrOverloaded
	}
	select {
	case resp := <-req.resp:
		return resp, resp.err
	case <-ctx.Done():
		// The worker still serves the request; the buffered response
		// channel absorbs its send.
		return response{}, ctx.Err()
	}
}

// Get returns the value stored at key.
func (s *Store) Get(ctx context.Context, key uint64) ([]byte, error) {
	sh, block, err := s.shardFor(key)
	if err != nil {
		return nil, err
	}
	if block >= sh.blocks {
		return nil, ErrOutOfRange
	}
	if sh.readEligible() {
		if v, served, err := s.getConcurrent(ctx, sh, block); served {
			return v, err
		}
	}
	resp, err := s.submit(ctx, sh, request{op: opGet, block: block, resp: make(chan response, 1)})
	if err != nil {
		return nil, err
	}
	return resp.value, nil
}

// Put stores value (at most MaxValueLen bytes) at key.
func (s *Store) Put(ctx context.Context, key uint64, value []byte) error {
	if len(value) > MaxValueLen {
		return ErrValueTooLarge
	}
	sh, block, err := s.shardFor(key)
	if err != nil {
		return err
	}
	if block >= sh.blocks {
		return ErrOutOfRange
	}
	v := make([]byte, len(value)) // callers may reuse their buffer
	copy(v, value)
	_, err = s.submit(ctx, sh, request{op: opPut, block: block, value: v, resp: make(chan response, 1)})
	return err
}

// broadcast sends one control op to every hosted shard concurrently
// and waits for all responses (or ctx). The lowest-numbered failing
// partition's error wins.
func (s *Store) broadcast(ctx context.Context, op opKind) error {
	shards := s.table().list
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			_, errs[i] = s.submit(ctx, sh, request{op: op, resp: make(chan response, 1)})
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", shards[i].id, err)
		}
	}
	return nil
}

// Flush forces every shard's dirty metadata to SCM (a global persist
// barrier).
func (s *Store) Flush(ctx context.Context) error { return s.broadcast(ctx, opFlush) }

// Checkpoint persists every shard's durable image to
// Config.CheckpointDir. Each shard flushes first, so the checkpoint
// is self-consistent.
func (s *Store) Checkpoint(ctx context.Context) error {
	if s.cfg.CheckpointDir == "" {
		return errors.New("store: no checkpoint dir configured")
	}
	return s.broadcast(ctx, opCheckpoint)
}

// Recover power-cycles every shard in place: crash (volatile state
// lost), run the protocol's recovery, and verify the whole shard. A
// crash-consistent protocol must come back serving every
// acknowledged write.
func (s *Store) Recover(ctx context.Context) error { return s.broadcast(ctx, opRecover) }

// RecoverShard power-cycles a single shard.
func (s *Store) RecoverShard(ctx context.Context, id int) error {
	sh, err := s.lookup(id)
	if err != nil {
		return err
	}
	_, err = s.submit(ctx, sh, request{op: opRecover, resp: make(chan response, 1)})
	return err
}

// Quarantine deliberately takes one shard out of service — a
// chaos-engineering control that exercises the exact quarantine/heal
// path a real recovery violation takes. The shard nacks requests with
// ErrShardFailed until the supervised heal loop restores it.
func (s *Store) Quarantine(ctx context.Context, id int) error {
	sh, err := s.lookup(id)
	if err != nil {
		return err
	}
	_, err = s.submit(ctx, sh, request{op: opQuarantine, resp: make(chan response, 1)})
	return err
}

// Close drains every shard's queue, flushes, writes a final
// checkpoint (when a checkpoint dir is configured), and stops the
// workers. ctx bounds the wait. Idempotent.
func (s *Store) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	shards := s.table().list
	for _, sh := range shards {
		close(sh.ch)
	}
	s.staging = nil // staged shards have no worker; just drop them
	s.mu.Unlock()
	var firstErr error
	for _, sh := range shards {
		select {
		case <-sh.done:
			if sh.closeErr != nil && firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", sh.id, sh.closeErr)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return firstErr
}

// --- worker -----------------------------------------------------------

// run is the shard worker: it owns the controller. In normal
// operation requests are drained in batches — one blocking receive,
// then opportunistic ones, then (when EpochWait is set and a put is
// pending) a bounded wait for stragglers — so bursty load amortizes
// both the per-wakeup bookkeeping and the group-commit climb.
//
// While an online recovery session is active the worker instead
// interleaves rebuild chunks with request service: traffic takes
// priority (a chunk only runs when the queue is idle), so a degraded
// request queues behind at most one RecoveryChunk of rebuild work.
// While quarantined the worker parks on the heal timer and nacks
// whatever slips into the queue.
func (sh *shard) run() {
	defer close(sh.done)
	batch := make([]request, 0, sh.batchMax)
	open := true
	for open {
		if sh.session != nil {
			select {
			case req, ok := <-sh.ch:
				if !ok {
					open = false
					continue
				}
				batch, open = sh.serveWave(batch, req)
			default:
				if sh.session.Step(sh.recChunk) {
					sh.finishRecovery()
				}
				sh.publish()
				// Yield between chunks: on a starved scheduler (one
				// CPU, many shards) a spinning rebuild would otherwise
				// run to completion before a waiting client ever gets
				// to enqueue, defeating degraded serving.
				runtime.Gosched()
			}
			continue
		}
		if shardHealth(sh.health.Load()) == healthQuarantined {
			open = sh.quarantineTick()
			continue
		}
		req, ok := <-sh.ch
		if !ok {
			break
		}
		batch, open = sh.serveWave(batch, req)
	}
	// Shutdown: queue fully drained above. Complete any in-flight
	// rebuild so the final flush and checkpoint see a whole, audited
	// tree, then leave a durable image. A detached (migrated-away)
	// shard skips the checkpoint: the partition's image now belongs
	// to its new owner.
	sh.barrier()
	if shardHealth(sh.health.Load()) != healthQuarantined {
		sh.now += sh.ctrl.Flush(sh.now)
		if sh.ckpt != "" && !sh.noFinalCkpt.Load() {
			sh.closeErr = sh.checkpoint()
		}
	}
	sh.publish()
}

// serveWave drains a batch behind req and serves it. The epoch
// straggler linger is skipped while a recovery session is active —
// rebuild work is the better use of idle time, and degraded writes
// bypass group commit anyway. Returns the (possibly regrown) batch
// buffer and false once the request channel is closed.
func (sh *shard) serveWave(batch []request, req request) ([]request, bool) {
	// Dequeue stamps close the queue_wait phase per request: a
	// request arriving during the linger below charges the linger
	// to queue_wait, while already-drained writes charge it to
	// epoch_stage — the honest attribution either way.
	req.sp.Mark(span.QueueWait)
	batch = append(batch[:0], req)
	open := true
fill:
	for len(batch) < sh.batchMax {
		select {
		case r, ok := <-sh.ch:
			if !ok {
				open = false
				break fill
			}
			r.sp.Mark(span.QueueWait)
			batch = append(batch, r)
		default:
			break fill
		}
	}
	if open && sh.session == nil && sh.epochWait > 0 && len(batch) < sh.batchMax && hasPut(batch) {
		timer := time.NewTimer(sh.epochWait)
	wait:
		for len(batch) < sh.batchMax {
			select {
			case r, ok := <-sh.ch:
				if !ok {
					open = false
					break wait
				}
				r.sp.Mark(span.QueueWait)
				batch = append(batch, r)
			case <-timer.C:
				break wait
			}
		}
		timer.Stop()
	}
	sh.serveBatch(batch)
	sh.m.batches.Add(1)
	sh.m.batchItems.Add(uint64(len(batch)))
	sh.publish()
	return batch, open
}

// hasPut reports whether the batch carries at least one write — the
// only requests worth delaying for a larger epoch.
func hasPut(batch []request) bool {
	for _, r := range batch {
		if r.op == opPut || r.op == opPutMulti {
			return true
		}
	}
	return false
}

// stagedAck is one put-carrying request whose acknowledgment is
// deferred until its epoch commits: the durability contract is that a
// response is sent only once the write is as durable as a per-op
// acknowledged write.
type stagedAck struct {
	req  request
	errs []error // per-kv results for multi-puts, nil for single puts
}

// serveBatch executes one drained batch. Writes are staged into a
// group-commit epoch and acknowledged together after it commits; reads
// are served inline against the pre-epoch state (legal — the staged
// writes are unacknowledged, so a concurrent reader may be ordered
// before them); control operations (flush, checkpoint, recover,
// chaos) force the open epoch to commit first so they observe and
// persist exactly the acknowledged state.
//
// The write fence is checked here, at drain time: a put that was
// queued before MigrateFence but drained after it must be nacked, not
// acknowledged against the stale source — FIFO order through the
// queue makes the fence a precise cut between journaled and refused
// writes.
func (sh *shard) serveBatch(batch []request) {
	var ep *mee.Epoch
	var acks []stagedAck
	commit := func() {
		sh.commitStaged(ep, acks)
		ep, acks = nil, nil
	}
	for _, r := range batch {
		if r.ctx != nil && r.ctx.Err() != nil {
			// The caller already gave up (deadline or cancel); never
			// report an abandoned request as having succeeded.
			r.resp <- response{err: r.ctx.Err()}
			continue
		}
		if shardHealth(sh.health.Load()) == healthQuarantined {
			r.resp <- response{err: ErrShardFailed}
			continue
		}
		switch r.op {
		case opPut, opPutMulti:
			if sh.fenced.Load() {
				sh.m.fencedNacks.Add(1)
				r.resp <- response{err: ErrFenced}
				continue
			}
			// Degraded writes bypass group commit: multi-op epochs
			// refuse to commit mid-rebuild (the climb would mix
			// unaudited ancestors), while the per-op path defers its
			// climb to the session's finish audit.
			if sh.epochMax <= 1 || sh.session != nil {
				r.resp <- sh.serve(r)
				continue
			}
			if ep == nil {
				ep = sh.ctrl.BeginEpoch(sh.now)
			}
			acks = append(acks, sh.stage(ep, r))
			if ep.Len() >= sh.epochMax {
				commit()
			}
		case opGet, opGetMulti:
			r.resp <- sh.serve(r)
		default:
			// Control operations (flush, checkpoint, power cycle,
			// chaos, quarantine, migration) observe whole-shard state:
			// commit the open epoch and complete any in-flight rebuild
			// first.
			commit()
			sh.barrier()
			r.resp <- sh.serve(r)
		}
	}
	commit()
}

// stage buffers one put-carrying request into the open epoch.
func (sh *shard) stage(ep *mee.Epoch, r request) stagedAck {
	a := stagedAck{req: r}
	var blk [scm.BlockSize]byte
	if r.op == opPut {
		sh.m.puts.Add(1)
		packValue(&blk, r.value)
		if err := ep.Put(r.block, blk[:]); err != nil {
			sh.countErr(err)
			a.errs = []error{err}
		}
		return a
	}
	a.errs = make([]error, len(r.kvs))
	sh.m.puts.Add(uint64(len(r.kvs)))
	for i, kv := range r.kvs {
		packValue(&blk, kv.value)
		if err := ep.Put(kv.block, blk[:]); err != nil {
			sh.countErr(err)
			a.errs[i] = err
		}
	}
	return a
}

// commitStaged commits the open epoch and acknowledges every staged
// request. On a commit error the worker degrades to per-op writes —
// each staged write replays through WriteBlock individually, so one
// poisoned request fails alone instead of nacking the whole batch.
func (sh *shard) commitStaged(ep *mee.Epoch, acks []stagedAck) {
	if ep == nil {
		return
	}
	staged := ep.Len()
	if staged == 0 {
		ep.Abort()
		for _, a := range acks {
			sh.ackStaged(a)
		}
		return
	}
	// The staging wait ends here: everything since dequeue was epoch
	// residency (buffering, linger, earlier batch items).
	for _, a := range acks {
		a.req.sp.Mark(span.EpochStage)
	}
	res, err := ep.Commit()
	if err == nil {
		sh.now += res.Cycles
		sh.m.epochs.Add(1)
		sh.m.epochOps.Add(uint64(staged))
		sh.histMu.Lock()
		sh.epochSizes.Observe(uint64(staged))
		sh.epochCycles.Observe(res.Cycles >> 8)
		sh.histMu.Unlock()
		for _, a := range acks {
			// Every staged write shares the commit's climb/persist wall
			// split (the commit IS their shared critical path); Reset
			// discards the near-identical raw interval so it is not
			// double counted.
			a.req.sp.Add(span.CommitClimb, res.ClimbNs)
			a.req.sp.Add(span.Persist, res.PersistNs)
			a.req.sp.Reset()
			sh.journalAck(a)
			sh.ackStaged(a)
		}
		return
	}
	sh.m.epochFallbacks.Add(1)
	sh.countErr(err)
	for _, a := range acks {
		switch a.req.op {
		case opPut:
			if a.errs != nil { // rejected at staging
				a.req.sp.Mark(span.EpochFallback)
				a.req.resp <- response{err: a.errs[0]}
				continue
			}
			err := sh.putBlock(a.req.block, a.req.value)
			if err == nil {
				sh.journalPut(a.req.block, a.req.value)
			}
			a.req.sp.Mark(span.EpochFallback)
			a.req.resp <- response{err: err}
		case opPutMulti:
			for i, kv := range a.req.kvs {
				if a.errs[i] != nil {
					continue
				}
				a.errs[i] = sh.putBlock(kv.block, kv.value)
				if a.errs[i] == nil {
					sh.journalPut(kv.block, kv.value)
				}
			}
			a.req.sp.Mark(span.EpochFallback)
			a.req.resp <- response{errs: a.errs}
		}
	}
}

// journalAck records one committed staged request into the migration
// delta journal (no-op when no migration is copying this shard).
func (sh *shard) journalAck(a stagedAck) {
	if !sh.migActive.Load() {
		return
	}
	if a.req.op == opPut {
		if a.errs == nil {
			sh.journalPut(a.req.block, a.req.value)
		}
		return
	}
	for i, kv := range a.req.kvs {
		if a.errs[i] == nil {
			sh.journalPut(kv.block, kv.value)
		}
	}
}

// ackStaged sends the post-commit response for one staged request.
func (sh *shard) ackStaged(a stagedAck) {
	if a.req.op == opPut {
		var err error
		if a.errs != nil {
			err = a.errs[0]
		}
		a.req.resp <- response{err: err}
		return
	}
	a.req.resp <- response{errs: a.errs}
}

// packValue frames a value into its 64 B block image (length prefix +
// payload).
func packValue(blk *[scm.BlockSize]byte, value []byte) {
	blk[0] = byte(len(value) + 1)
	copy(blk[1:], value)
	for i := len(value) + 1; i < scm.BlockSize; i++ {
		blk[i] = 0
	}
}

// putBlock runs the per-op secure write path for one framed value.
func (sh *shard) putBlock(block uint64, value []byte) error {
	var blk [scm.BlockSize]byte
	packValue(&blk, value)
	cycles, err := sh.ctrl.WriteBlock(sh.now, block, blk[:])
	sh.now += cycles
	if err != nil {
		sh.countErr(err)
		return asStoreErr(err)
	}
	return nil
}

// getBlock runs the verified read path and unframes the value.
func (sh *shard) getBlock(block uint64) ([]byte, error) {
	var blk [scm.BlockSize]byte
	cycles, err := sh.ctrl.ReadBlock(sh.now, block, blk[:])
	sh.now += cycles
	if err != nil {
		sh.countErr(err)
		return nil, asStoreErr(err)
	}
	n := int(blk[0])
	if n == 0 {
		sh.m.misses.Add(1)
		return nil, ErrNotFound
	}
	v := make([]byte, n-1)
	copy(v, blk[1:n])
	return v, nil
}

// serve executes one request against the worker-owned controller.
func (sh *shard) serve(r request) response {
	if shardHealth(sh.health.Load()) == healthQuarantined {
		return response{err: ErrShardFailed}
	}
	switch r.op {
	case opGet:
		sh.m.gets.Add(1)
		// In-batch wait since dequeue is staging-equivalent residency;
		// the verified read walk itself is the climb.
		r.sp.Mark(span.EpochStage)
		v, err := sh.getBlock(r.block)
		r.sp.Mark(span.CommitClimb)
		return response{value: v, err: err}
	case opGetMulti:
		values := make([][]byte, len(r.blocks))
		errs := make([]error, len(r.blocks))
		sh.m.gets.Add(uint64(len(r.blocks)))
		r.sp.Mark(span.EpochStage)
		for i, b := range r.blocks {
			values[i], errs[i] = sh.getBlock(b)
		}
		r.sp.Mark(span.CommitClimb)
		return response{values: values, errs: errs}
	case opPut:
		sh.m.puts.Add(1)
		r.sp.Mark(span.EpochStage)
		err := sh.putBlock(r.block, r.value)
		if err == nil {
			sh.journalPut(r.block, r.value)
		}
		r.sp.Mark(span.CommitClimb)
		return response{err: err}
	case opPutMulti:
		errs := make([]error, len(r.kvs))
		sh.m.puts.Add(uint64(len(r.kvs)))
		r.sp.Mark(span.EpochStage)
		for i, kv := range r.kvs {
			errs[i] = sh.putBlock(kv.block, kv.value)
			if errs[i] == nil {
				sh.journalPut(kv.block, kv.value)
			}
		}
		r.sp.Mark(span.CommitClimb)
		return response{errs: errs}
	case opFlush:
		sh.now += sh.ctrl.Flush(sh.now)
		sh.m.flushes.Add(1)
		return response{}
	case opCheckpoint:
		if err := sh.checkpoint(); err != nil {
			return response{err: err}
		}
		sh.m.checkpoints.Add(1)
		return response{}
	case opRecover:
		return response{err: sh.powerCycle()}
	case opChaos:
		res := sh.runChaos(*r.chaos)
		return response{chaos: res, err: res.startErr}
	case opQuarantine:
		sh.inj.Detach()
		sh.fail()
		return response{}
	case opMigrateBegin:
		// The control-op barrier committed the open epoch and finished
		// any rebuild, so the image is exactly the acknowledged state.
		sh.now += sh.ctrl.Flush(sh.now)
		if err := sh.ctrl.SaveCheckpoint(r.migBuf); err != nil {
			return response{err: err}
		}
		sh.migMu.Lock()
		sh.migOn = true
		sh.migLog = nil
		sh.migOverflow = false
		sh.migMu.Unlock()
		sh.migActive.Store(true)
		sh.m.migrations.Add(1)
		return response{}
	case opMigrateFence:
		sh.fenced.Store(true)
		return response{}
	case opMigrateAbort:
		sh.fenced.Store(false)
		sh.migActive.Store(false)
		sh.migMu.Lock()
		sh.migOn = false
		sh.migLog = nil
		sh.migOverflow = false
		sh.migMu.Unlock()
		return response{}
	}
	return response{err: fmt.Errorf("store: unknown op %d", r.op)}
}

// powerCycle crashes the shard's controller and restarts it. When the
// protocol supports online recovery the shard returns immediately in
// recovering+degraded state and the worker rebuilds between drains —
// the rebuild's finish audit replaces the blocking whole-shard verify
// (any pre-crash tamper is still detected, just at session end:
// bounded deferred detection). Otherwise the cycle blocks on the full
// Recover+VerifyAll as before. The injector is detached across the
// cycle so recovery traffic does not pollute the fault journal.
func (sh *shard) powerCycle() error {
	sh.inj.Detach()
	sh.ctrl.Crash()
	sh.health.Store(int32(healthRecovering))
	if s, ok := sh.ctrl.BeginRecovery(sh.now); ok {
		sh.session = s
		sh.degraded.Store(true)
		return nil
	}
	if _, err := sh.ctrl.Recover(sh.now); err != nil {
		sh.fail()
		return fmt.Errorf("%w: recovery: %v", ErrShardFailed, err)
	}
	if err := sh.ctrl.VerifyAll(sh.now); err != nil {
		sh.fail()
		return fmt.Errorf("%w: post-recovery verify: %v", ErrShardFailed, err)
	}
	sh.health.Store(int32(healthServing))
	sh.m.recoveries.Add(1)
	sh.inj = faults.NewInjector(sh.ctrl)
	sh.inj.Attach()
	return nil
}

// barrier completes any in-flight online recovery synchronously so
// the next operation observes a whole, audited tree. Control
// operations and shutdown call it; a no-op outside a session.
func (sh *shard) barrier() {
	if sh.session == nil {
		return
	}
	for !sh.session.Step(sh.recChunk) {
	}
	sh.finishRecovery()
}

// finishRecovery runs the session's audit + degraded-write patch and
// returns the shard to serving. An audit failure means integrity was
// violated while the shard served degraded traffic — it quarantines
// and the heal loop takes over.
func (sh *shard) finishRecovery() {
	sess := sh.session
	sh.session = nil
	sh.degraded.Store(false)
	sh.m.degradedWrites.Add(sess.DegradedWrites())
	sh.m.provisionalLoads.Add(sess.ProvisionalFetches())
	if _, err := sess.Finish(sh.now); err != nil {
		sh.countErr(err)
		sh.fail()
		return
	}
	sh.health.Store(int32(healthServing))
	sh.m.recoveries.Add(1)
	sh.inj = faults.NewInjector(sh.ctrl)
	sh.inj.Attach()
}

// quarantineTick parks the worker until the next heal attempt is due,
// nacking any request that slipped past the submit fast-path. Returns
// false when the store is closing.
func (sh *shard) quarantineTick() bool {
	var due <-chan time.Time
	if sh.healMax >= 0 && sh.healTried < sh.healMax {
		t := time.NewTimer(time.Until(sh.healAt))
		defer t.Stop()
		due = t.C
	}
	select {
	case req, ok := <-sh.ch:
		if !ok {
			return false
		}
		req.sp.Mark(span.QueueWait)
		req.resp <- response{err: ErrShardFailed}
	case <-due:
		sh.healOnce()
	}
	return true
}

// healOnce runs one supervised recovery attempt on the quarantined
// shard. The first attempt re-recovers in place — the violation may
// stem from volatile state a clean power cycle clears. Later attempts
// escalate to restoring the last good checkpoint first: acknowledged-
// but-uncheckpointed writes are lost, but the shard returns with a
// provably intact tree. Failures back off exponentially up to the cap.
func (sh *shard) healOnce() {
	sh.healTried++
	sh.m.healAttempts.Add(1)
	if err := sh.heal(sh.healTried > 1); err != nil {
		sh.countErr(err)
		sh.healWait *= 2
		if sh.healWait > sh.healBackoffMax {
			sh.healWait = sh.healBackoffMax
		}
		sh.healAt = time.Now().Add(sh.healWait)
		sh.publish()
		return
	}
	sh.health.Store(int32(healthServing))
	sh.m.heals.Add(1)
	sh.m.recoveries.Add(1)
	sh.inj = faults.NewInjector(sh.ctrl)
	sh.inj.Attach()
	sh.publish()
}

// heal runs one blocking recovery on the quarantined controller,
// optionally restoring the last checkpoint image first.
func (sh *shard) heal(restore bool) error {
	restored := false
	if restore && sh.ckpt != "" {
		f, err := os.Open(sh.ckpt)
		switch {
		case err == nil:
			loadErr := sh.ctrl.LoadCheckpoint(f)
			f.Close()
			if loadErr != nil {
				return loadErr
			}
			restored = true
		case !errors.Is(err, os.ErrNotExist):
			return err
		}
	}
	if !restored {
		sh.ctrl.Crash()
	}
	if _, err := sh.ctrl.Recover(sh.now); err != nil {
		return err
	}
	return sh.ctrl.VerifyAll(sh.now)
}

// checkpoint writes the shard's durable image atomically
// (temp + rename), so a crash mid-checkpoint leaves the previous
// image intact.
func (sh *shard) checkpoint() error {
	if err := os.MkdirAll(filepath.Dir(sh.ckpt), 0o755); err != nil {
		return err
	}
	tmp := sh.ckpt + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sh.ctrl.SaveCheckpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, sh.ckpt)
}

// fail quarantines the shard and arms the heal loop. Worker-only.
func (sh *shard) fail() {
	sh.health.Store(int32(healthQuarantined))
	sh.degraded.Store(false)
	sh.m.failures.Add(1)
	sh.healTried = 0
	sh.healWait = sh.healBackoff
	sh.healAt = time.Now().Add(sh.healWait)
}

func (sh *shard) countErr(err error) {
	var ie *mee.IntegrityError
	switch {
	case errors.As(err, &ie):
		sh.m.integrityErrs.Add(1)
	case errors.Is(err, mee.ErrRecovering) || errors.Is(err, ErrRecovering):
		sh.m.recoveringNacks.Add(1)
	default:
		sh.m.otherErrs.Add(1)
	}
}

// asStoreErr maps controller-level recovery refusals onto the store's
// retryable sentinel so callers see one error vocabulary.
func asStoreErr(err error) error {
	if errors.Is(err, mee.ErrRecovering) {
		return fmt.Errorf("%w: %v", ErrRecovering, err)
	}
	return err
}
