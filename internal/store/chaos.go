package store

import (
	"context"
	"math/rand"
	"time"

	"amnt/internal/faults"
	"amnt/internal/scm"
)

// ChaosSpec asks for one fault-injected power failure on a live
// shard.
type ChaosSpec struct {
	// Shard is the target shard.
	Shard int `json:"shard"`
	// Kind names the fault (faults.ParseKind: "none", "torn",
	// "drop", "reorder", "bitrot", ...).
	Kind string `json:"kind"`
	// Seed drives the fault-site choice deterministically.
	Seed int64 `json:"seed"`
}

// ChaosResult reports what the injected failure did to the shard.
// The contract the store enforces: a fault is repaired, recovered
// around, or loudly detected — never silently accepted. A Violation
// takes the shard out of service.
type ChaosResult struct {
	Shard int    `json:"shard"`
	Kind  string `json:"kind"`
	// Status is the checker verdict: "recovered", "detected", or
	// "violation".
	Status string `json:"status"`
	// Repaired is set when a detected fault was repaired in place
	// (media revert + re-recovery) and the shard resumed serving.
	Repaired bool `json:"repaired"`
	// Serving is whether the shard still accepts requests.
	Serving    bool     `json:"serving"`
	Injections []string `json:"injections"`
	// DataBlocks lists the data-region blocks the fault touched.
	// Under the weak persist model a "recovered" outcome may have
	// legally reverted exactly these blocks to an earlier durable
	// version (the persist was still in flight at the power failure);
	// every other block is untouched.
	DataBlocks  []uint64 `json:"data_blocks,omitempty"`
	Resolutions []string `json:"resolutions,omitempty"`
	Violations  []string `json:"violations,omitempty"`
	RecoveryErr string   `json:"recovery_err,omitempty"`
	VerifyErr   string   `json:"verify_err,omitempty"`
	WallMS      float64  `json:"wall_ms"`

	startErr error // spec rejection, surfaced as the op error
}

// Chaos injects a fault-laden power failure into a live shard and
// verifies recovery in place, from inside the shard's own worker (so
// the single-writer contract holds while the rest of the store keeps
// serving). Detected faults are repaired by reverting the injected
// media damage and re-running recovery; violations mark the shard
// failed.
func (s *Store) Chaos(ctx context.Context, spec ChaosSpec) (*ChaosResult, error) {
	sh, err := s.lookup(spec.Shard)
	if err != nil {
		return nil, err
	}
	if _, err := faults.ParseKind(spec.Kind); err != nil {
		return nil, err
	}
	sp := spec
	resp, err := s.submit(ctx, sh, request{op: opChaos, chaos: &sp, resp: make(chan response, 1)})
	if err != nil {
		return nil, err
	}
	return resp.chaos, nil
}

// runChaos executes the crash sequence on the worker goroutine:
// capture the in-flight persist window, detach the journal, power
// fail, apply the fault to the captured window, then run the full
// recovery invariant check. Afterwards the shard either serves again
// (recovered or repaired) or is failed (violation, or repair did not
// converge).
func (sh *shard) runChaos(spec ChaosSpec) *ChaosResult {
	res := &ChaosResult{Shard: sh.id, Kind: spec.Kind}
	kind, err := faults.ParseKind(spec.Kind)
	if err != nil {
		res.startErr = err
		return res
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	start := time.Now()

	sh.inj.CaptureWindow(sh.now)
	sh.inj.Detach()
	sh.ctrl.Crash()
	ins := sh.inj.Apply(rng, kind, sh.now)
	for _, in := range ins {
		res.Injections = append(res.Injections, in.String())
		if in.Region == scm.Data {
			res.DataBlocks = append(res.DataBlocks, in.Index)
		}
	}
	out := faults.CheckRecovery(context.Background(), sh.ctrl, sh.now, faults.CheckOptions{
		Injections: ins,
	})
	res.Status = out.Status.String()
	res.Resolutions = out.Resolutions
	res.Violations = out.Violations
	res.RecoveryErr = out.RecoveryErr
	res.VerifyErr = out.VerifyErr
	sh.m.chaosRuns.Add(1)

	switch out.Status {
	case faults.StatusRecovered:
		sh.m.chaosRecovered.Add(1)
	case faults.StatusDetected:
		sh.m.chaosDetected.Add(1)
		// The protocol caught the damage; the injection journal knows
		// the pre-fault durable content, so repair the media and
		// reboot — the secure-SCM equivalent of restoring the block
		// from a replica once the MEE flags it.
		for _, in := range ins {
			if in.Original != nil {
				sh.dev.ReplayBlock(in.Region, in.Index, in.Original)
			} else {
				sh.dev.Erase(in.Region, in.Index)
			}
		}
		sh.ctrl.Crash()
		if _, err := sh.ctrl.Recover(sh.now); err != nil {
			sh.fail()
		} else if err := sh.ctrl.VerifyAll(sh.now); err != nil {
			sh.fail()
		} else {
			res.Repaired = true
			sh.m.chaosRepaired.Add(1)
		}
	default: // StatusViolation: silent corruption — out of service.
		sh.m.chaosViolations.Add(1)
		sh.fail()
	}

	if shardHealth(sh.health.Load()) != healthQuarantined {
		sh.inj = faults.NewInjector(sh.ctrl)
		sh.inj.Attach()
	}
	res.Serving = shardHealth(sh.health.Load()) != healthQuarantined
	res.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	return res
}
