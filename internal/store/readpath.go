package store

import (
	"context"
	"errors"

	"amnt/internal/mee"
	"amnt/internal/scm"
	"amnt/internal/telemetry/span"
)

// The concurrent read path: when Config.ReadConcurrency is positive
// and the shard's policy supports the mee read view, gets on a
// healthy shard are served directly by the caller's goroutine under a
// per-shard bounded semaphore, bypassing the write queue entirely.
// Everything that is not a healthy-shard verified read falls back to
// the serialized queue path, which remains the single authority for
// degradation semantics: quarantined shards nack ErrShardFailed,
// blocking-recovery shards nack ErrRecovering, degraded-recovering
// shards admit with provisional loads, stopped shards answer
// NotOwnedError — all unchanged from the pre-pool behavior.

// readEligible reports whether a get may try the reader pool right
// now. Recovering shards are excluded even when degraded-serving:
// the read view refuses mid-rebuild state anyway (ErrRecovering), so
// skipping the attempt saves the bounce.
func (sh *shard) readEligible() bool {
	return sh.readSem != nil &&
		shardHealth(sh.health.Load()) == healthServing &&
		!sh.stopped.Load()
}

// readViewBlock runs one verified read off the shard's read view and
// unframes the value. fallback=true means the serialized path must
// serve this block (snapshot conflict, recovery, or an unsupported
// policy); err is then nil. Counters mirror the queue path's:
// served reads count into gets/misses, abandoned attempts into
// read_fallbacks only (the queue serve will count the get).
func (sh *shard) readViewBlock(block uint64) (v []byte, fallback bool, err error) {
	var blk [scm.BlockSize]byte
	retries, err := sh.ctrl.ReadBlockConcurrent(block, blk[:])
	if retries > 0 {
		sh.m.readRetries.Add(uint64(retries))
	}
	if err != nil {
		if errors.Is(err, mee.ErrViewConflict) ||
			errors.Is(err, mee.ErrViewUnsupported) ||
			errors.Is(err, mee.ErrRecovering) {
			sh.m.readFallbacks.Add(1)
			return nil, true, nil
		}
		sh.m.gets.Add(1)
		sh.countErr(err)
		return nil, false, asStoreErr(err)
	}
	sh.m.gets.Add(1)
	sh.m.concurrentReads.Add(1)
	n := int(blk[0])
	if n == 0 {
		sh.m.misses.Add(1)
		return nil, false, ErrNotFound
	}
	v = make([]byte, n-1)
	copy(v, blk[1:n])
	return v, false, nil
}

// getConcurrent attempts to serve one get off sh's reader pool.
// served=false means the caller must use the queue path (no counters
// or span phases were finalized). served=true is a complete outcome:
// the value, ErrNotFound, a genuine integrity error, or ctx expiry
// while waiting for a pool slot.
func (s *Store) getConcurrent(ctx context.Context, sh *shard, block uint64) (v []byte, served bool, err error) {
	select {
	case sh.readSem <- struct{}{}:
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
	defer func() { <-sh.readSem }()
	// Health may have flipped while waiting for a slot.
	if shardHealth(sh.health.Load()) != healthServing || sh.stopped.Load() {
		return nil, false, nil
	}
	v, fallback, err := sh.readViewBlock(block)
	if fallback {
		return nil, false, nil
	}
	if sh.stopped.Load() {
		// The shard detached (migration hand-off) while the read ran;
		// re-serve through the queue so the caller gets the ownership
		// hint instead of possibly stale data.
		return nil, false, nil
	}
	sp := span.FromContext(ctx)
	sp.SetShard(sh.id)
	// Pool-served gets never enter the write queue: queue_wait stays
	// 0 and the whole service time (slot wait + snapshot + verify +
	// decrypt) is attributed to read_verify.
	sp.Mark(span.ReadVerify)
	return v, true, err
}

// serveLegConcurrent attempts the reader pool for one GetBatch leg,
// holding a single pool slot for the whole leg. served=false means
// nothing was served — submit the full leg. When served, values/errs
// are parallel to blocks and leftover lists positions that still need
// the queue (their values/errs entries are unset); the pool slot is
// released before returning, so the caller may block on submit.
func (s *Store) serveLegConcurrent(ctx context.Context, sh *shard, blocks []uint64, leg *span.Span) (values [][]byte, errs []error, leftover []int, served bool) {
	if !sh.readEligible() {
		return nil, nil, nil, false
	}
	select {
	case sh.readSem <- struct{}{}:
	case <-ctx.Done():
		return nil, nil, nil, false
	}
	defer func() { <-sh.readSem }()
	if shardHealth(sh.health.Load()) != healthServing || sh.stopped.Load() {
		return nil, nil, nil, false
	}
	values = make([][]byte, len(blocks))
	errs = make([]error, len(blocks))
	for i, b := range blocks {
		v, fallback, err := sh.readViewBlock(b)
		if fallback {
			leftover = append(leftover, i)
			continue
		}
		values[i], errs[i] = v, err
	}
	if sh.stopped.Load() {
		return nil, nil, nil, false
	}
	leg.SetShard(sh.id)
	leg.Mark(span.ReadVerify)
	return values, errs, leftover, true
}
