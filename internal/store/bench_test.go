package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkStoreThroughput measures end-to-end store ops/sec (mixed
// 50/50 get/put over a shared keyspace) as the shard count scales.
// Overloaded submissions retry — the benchmark measures completed
// operations, with the rejection rate reported as overloads/op.
func BenchmarkStoreThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := Open(Config{
				Shards:        shards,
				ShardMemBytes: 1 << 20,
				Protocol:      "leaf",
				QueueDepth:    256,
				BatchMax:      32,
			})
			if err != nil {
				b.Fatalf("open: %v", err)
			}
			defer func() {
				if err := s.Close(context.Background()); err != nil {
					b.Fatalf("close: %v", err)
				}
			}()
			ctx := context.Background()
			keyspace := uint64(shards) * (1 << 12)
			var seq, overloads atomic.Uint64
			val := make([]byte, 24)

			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				v := make([]byte, len(val))
				for pb.Next() {
					n := seq.Add(1)
					key := (n * 2654435761) % keyspace
					var err error
					for {
						if n%2 == 0 {
							binary.LittleEndian.PutUint64(v, key)
							err = s.Put(ctx, key, v)
						} else {
							_, err = s.Get(ctx, key)
							if errors.Is(err, ErrNotFound) {
								err = nil
							}
						}
						if !errors.Is(err, ErrOverloaded) {
							break
						}
						overloads.Add(1)
					}
					if err != nil {
						b.Fatalf("op %d: %v", n, err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(overloads.Load())/float64(b.N), "overloads/op")
		})
	}
}
