package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkStoreThroughput measures end-to-end store ops/sec (mixed
// 50/50 get/put over a shared keyspace) as the shard count scales.
// Overloaded submissions retry — the benchmark measures completed
// operations, with the rejection rate reported as overloads/op.
func BenchmarkStoreThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := Open(Config{
				Shards:        shards,
				ShardMemBytes: 1 << 20,
				Protocol:      "leaf",
				QueueDepth:    256,
				BatchMax:      32,
			})
			if err != nil {
				b.Fatalf("open: %v", err)
			}
			defer func() {
				if err := s.Close(context.Background()); err != nil {
					b.Fatalf("close: %v", err)
				}
			}()
			ctx := context.Background()
			keyspace := uint64(shards) * (1 << 12)
			var seq, overloads atomic.Uint64
			val := make([]byte, 24)

			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				v := make([]byte, len(val))
				for pb.Next() {
					n := seq.Add(1)
					key := (n * 2654435761) % keyspace
					var err error
					for {
						if n%2 == 0 {
							binary.LittleEndian.PutUint64(v, key)
							err = s.Put(ctx, key, v)
						} else {
							_, err = s.Get(ctx, key)
							if errors.Is(err, ErrNotFound) {
								err = nil
							}
						}
						if !errors.Is(err, ErrOverloaded) {
							break
						}
						overloads.Add(1)
					}
					if err != nil {
						b.Fatalf("op %d: %v", n, err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(overloads.Load())/float64(b.N), "overloads/op")
		})
	}
}

// BenchmarkStoreThroughputBatched measures the batch-first path: each
// iteration is one PutBatch+GetBatch round of `batch` keys, fanned out
// as one multi-op request per shard and committed as group-commit
// epochs. ns/op divided by 2×batch is the per-key cost to compare
// against BenchmarkStoreThroughput.
func BenchmarkStoreThroughputBatched(b *testing.B) {
	for _, batch := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s, err := Open(Config{
				Shards:        4,
				ShardMemBytes: 1 << 20,
				Protocol:      "leaf",
				QueueDepth:    256,
				BatchMax:      32,
			})
			if err != nil {
				b.Fatalf("open: %v", err)
			}
			defer func() {
				if err := s.Close(context.Background()); err != nil {
					b.Fatalf("close: %v", err)
				}
			}()
			ctx := context.Background()
			keyspace := uint64(4) * (1 << 12)
			var seq atomic.Uint64

			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				kvs := make([]KV, batch)
				keys := make([]uint64, batch)
				val := make([]byte, 24)
				for pb.Next() {
					n := seq.Add(1)
					for i := range kvs {
						key := ((n*uint64(batch) + uint64(i)) * 2654435761) % keyspace
						binary.LittleEndian.PutUint64(val, key)
						kvs[i] = KV{Key: key, Value: val}
						keys[i] = key
					}
					for {
						errs := s.PutBatch(ctx, kvs)
						if !retryBatch(b, errs) {
							break
						}
					}
					for {
						_, errs := s.GetBatch(ctx, keys)
						if !retryBatch(b, errs) {
							break
						}
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N*batch*2)/b.Elapsed().Seconds(), "keys/sec")
		})
	}
}

// BenchmarkStoreReadThroughput measures pure-read ops/sec (the
// YCSB-C shape) against the reader-pool width. readers=0 is the
// serialized baseline — every get takes the shard worker's channel
// round trip; positive widths serve gets off the concurrent read
// view on the caller's goroutine. The keyspace is fully preloaded so
// every get is a verified read, never a first-touch zero fill.
func BenchmarkStoreReadThroughput(b *testing.B) {
	for _, readers := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			s, err := Open(Config{
				Shards:          4,
				ShardMemBytes:   1 << 20,
				Protocol:        "leaf",
				QueueDepth:      256,
				BatchMax:        32,
				ReadConcurrency: readers,
			})
			if err != nil {
				b.Fatalf("open: %v", err)
			}
			defer func() {
				if err := s.Close(context.Background()); err != nil {
					b.Fatalf("close: %v", err)
				}
			}()
			ctx := context.Background()
			keyspace := uint64(4) * (1 << 12)
			val := make([]byte, 24)
			for key := uint64(0); key < keyspace; key++ {
				binary.LittleEndian.PutUint64(val, key)
				if err := s.Put(ctx, key, val); err != nil {
					b.Fatalf("preload %d: %v", key, err)
				}
			}
			var seq atomic.Uint64

			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					key := (n * 2654435761) % keyspace
					var err error
					for {
						_, err = s.Get(ctx, key)
						if !errors.Is(err, ErrOverloaded) {
							break
						}
					}
					if err != nil {
						b.Fatalf("get %d: %v", key, err)
					}
				}
			})
			b.StopTimer()
			if readers > 0 {
				var conc uint64
				for _, ss := range s.Stats().Shards {
					conc += ss.ConcurrentRds
				}
				if conc == 0 {
					b.Fatal("pool configured but no gets served off it")
				}
			}
		})
	}
}

// retryBatch fails the benchmark on a real error and reports whether
// the batch saw backpressure and should retry.
func retryBatch(b *testing.B, errs []error) bool {
	for _, err := range errs {
		if errors.Is(err, ErrOverloaded) {
			return true
		}
		if err != nil && !errors.Is(err, ErrNotFound) {
			b.Fatalf("batch op: %v", err)
		}
	}
	return false
}
