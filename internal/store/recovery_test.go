package store

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amnt/internal/bmt"
	"amnt/internal/faults"
	"amnt/internal/mee"
	"amnt/internal/scm"
	"amnt/internal/stats"
)

// newBareShard hand-builds a shard around a real controller without
// starting its worker goroutine, so tests can drive the degraded-mode
// state machine deterministically from one goroutine.
func newBareShard(t *testing.T, protocol string, mem uint64) *shard {
	t.Helper()
	policy, err := mee.NewPolicy(protocol, mee.PolicyOptions{})
	if err != nil {
		t.Fatalf("policy %q: %v", protocol, err)
	}
	dev := scm.New(scm.Config{CapacityBytes: mem})
	ctrl := mee.New(dev, mee.Config{}, policy)
	sh := &shard{
		id:             0,
		dev:            dev,
		ctrl:           ctrl,
		ch:             make(chan request, 8),
		done:           make(chan struct{}),
		blocks:         mem / scm.BlockSize,
		batchMax:       8,
		epochMax:       1,
		epochSizes:     stats.NewHistogram(),
		epochCycles:    stats.NewHistogram(),
		prog:           &bmt.Progress{},
		recChunk:       1,
		healBackoff:    time.Millisecond,
		healBackoffMax: 4 * time.Millisecond,
		healMax:        8,
	}
	ctrl.SetRecoveryProgress(sh.prog)
	sh.inj = faults.NewInjector(ctrl)
	sh.inj.Attach()
	return sh
}

func barePut(t *testing.T, sh *shard, block uint64, v []byte) {
	t.Helper()
	resp := sh.serve(request{op: opPut, block: block, value: v})
	if resp.err != nil {
		t.Fatalf("put block %d: %v", block, resp.err)
	}
}

func bareGet(t *testing.T, sh *shard, block uint64) ([]byte, error) {
	t.Helper()
	resp := sh.serve(request{op: opGet, block: block})
	return resp.value, resp.err
}

// TestShardDegradedServingDeterministic drives the full degraded-mode
// state machine by hand: power cycle into an online session, serve
// verified traffic between rebuild chunks, finish back to serving,
// and survive a second cycle through the barrier path.
func TestShardDegradedServingDeterministic(t *testing.T) {
	sh := newBareShard(t, "leaf", 256<<10)
	const keys = 128
	for b := uint64(0); b < keys; b++ {
		barePut(t, sh, b, stamp(b))
	}
	if err := sh.powerCycle(); err != nil {
		t.Fatalf("power cycle: %v", err)
	}
	if sh.session == nil {
		t.Fatal("leaf shard must power-cycle into an online session")
	}
	if h := shardHealth(sh.health.Load()); h != healthRecovering {
		t.Fatalf("health = %s, want recovering", h)
	}
	if !sh.degraded.Load() {
		t.Fatal("degraded flag not set during online recovery")
	}

	// Interleave a degraded overwrite + verified readback with every
	// rebuild chunk until the session is done.
	b := uint64(0)
	for {
		done := sh.session.Step(sh.recChunk)
		barePut(t, sh, b%keys, stamp(b%keys))
		v, err := bareGet(t, sh, b%keys)
		if err != nil {
			t.Fatalf("degraded get %d: %v", b%keys, err)
		}
		checkStamp(t, b%keys, v)
		b++
		if done {
			break
		}
	}
	sh.finishRecovery()
	if h := shardHealth(sh.health.Load()); h != healthServing {
		t.Fatalf("health after finish = %s, want serving", h)
	}
	if sh.session != nil || sh.degraded.Load() {
		t.Fatal("session state not cleared after finish")
	}
	if sh.m.degradedWrites.Load() == 0 {
		t.Fatal("no degraded writes recorded")
	}
	if sh.m.recoveries.Load() != 1 {
		t.Fatalf("recoveries = %d, want 1", sh.m.recoveries.Load())
	}
	for b := uint64(0); b < keys; b++ {
		v, err := bareGet(t, sh, b)
		if err != nil {
			t.Fatalf("post-recovery get %d: %v", b, err)
		}
		checkStamp(t, b, v)
	}
	// The patched tree must be a valid crash image: cycle again and
	// complete the session synchronously via the control barrier.
	if err := sh.powerCycle(); err != nil {
		t.Fatalf("second power cycle: %v", err)
	}
	sh.barrier()
	if h := shardHealth(sh.health.Load()); h != healthServing {
		t.Fatalf("health after barrier = %s, want serving", h)
	}
	for b := uint64(0); b < keys; b++ {
		v, err := bareGet(t, sh, b)
		if err != nil {
			t.Fatalf("post-barrier get %d: %v", b, err)
		}
		checkStamp(t, b, v)
	}
}

// TestStoreAdmissionByHealth pins the submit fast path per health
// state: quarantined nacks ErrShardFailed, a blocking (non-degraded)
// recovery nacks ErrRecovering, and a degraded recovery admits.
func TestStoreAdmissionByHealth(t *testing.T) {
	sh := &shard{id: 0, ch: make(chan request, 4), done: make(chan struct{}), blocks: 1 << 10, batchMax: 1}
	s := &Store{cfg: Config{Partitions: 1}, staging: map[int]*shard{}}
	s.tab.Store(newShardTable([]*shard{sh}))
	ctx := context.Background()

	sh.health.Store(int32(healthQuarantined))
	if err := s.Put(ctx, 0, []byte("x")); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("quarantined put: %v, want ErrShardFailed", err)
	}
	if ss := s.Stats().Shards[0]; ss.Health != "quarantined" || ss.Serving {
		t.Fatalf("quarantined snapshot: %+v", ss)
	}

	sh.health.Store(int32(healthRecovering))
	if err := s.Put(ctx, 0, []byte("x")); !errors.Is(err, ErrRecovering) {
		t.Fatalf("blocking-recovery put: %v, want ErrRecovering", err)
	}
	if n := sh.m.recoveringNacks.Load(); n != 1 {
		t.Fatalf("recovering_nacks = %d, want 1", n)
	}
	if ss := s.Stats().Shards[0]; ss.Health != "recovering" || !ss.Serving {
		t.Fatalf("recovering snapshot: %+v", ss)
	}

	// Degraded recovery admits: with no worker the request parks until
	// the deadline, proving it entered the queue.
	sh.degraded.Store(true)
	dctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := s.Put(dctx, 0, []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("degraded put: %v, want deadline (admitted)", err)
	}

	sh.health.Store(int32(healthServing))
	if ss := s.Stats().Shards[0]; ss.Health != "serving" || !ss.Serving {
		t.Fatalf("serving snapshot: %+v", ss)
	}
}

// TestShardHealBackoffAndEscalation: a quarantined shard with
// corrupted media fails its in-place heal, backs off exponentially to
// the cap, and — when a checkpoint exists — escalates to a
// checkpoint restore that clears the damage and restores service.
func TestShardHealBackoffAndEscalation(t *testing.T) {
	sh := newBareShard(t, "leaf", 128<<10)
	sh.ckpt = filepath.Join(t.TempDir(), "shard.ckpt")
	const keys = 64
	for b := uint64(0); b < keys; b++ {
		barePut(t, sh, b, stamp(b))
	}
	sh.now += sh.ctrl.Flush(sh.now)
	if err := sh.checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Corrupt a counter block on media: every in-place recovery must
	// fail its audit until the checkpoint restore replaces the image.
	idxs := sh.dev.Indices(scm.Counter)
	if len(idxs) == 0 {
		t.Fatal("no counters on device")
	}
	if !sh.dev.TamperByte(scm.Counter, idxs[0], 3, 0x20) {
		t.Fatal("tamper failed")
	}
	sh.inj.Detach()
	sh.fail()
	if h := shardHealth(sh.health.Load()); h != healthQuarantined {
		t.Fatalf("health after fail = %s", h)
	}
	if sh.healWait != sh.healBackoff {
		t.Fatalf("initial backoff = %v, want %v", sh.healWait, sh.healBackoff)
	}

	// Attempt 1 recovers in place and must fail on the tampered media.
	sh.healOnce()
	if h := shardHealth(sh.health.Load()); h != healthQuarantined {
		t.Fatal("in-place heal succeeded on tampered media")
	}
	if sh.healWait != 2*sh.healBackoff {
		t.Fatalf("backoff after failure = %v, want %v", sh.healWait, 2*sh.healBackoff)
	}
	// Attempt 2 escalates to the checkpoint image, clearing the
	// tamper.
	sh.healOnce()
	if h := shardHealth(sh.health.Load()); h != healthServing {
		t.Fatal("checkpoint-restore heal did not restore service")
	}
	if got, want := sh.m.healAttempts.Load(), uint64(2); got != want {
		t.Fatalf("heal_attempts = %d, want %d", got, want)
	}
	if got := sh.m.heals.Load(); got != 1 {
		t.Fatalf("heals = %d, want 1", got)
	}
	for b := uint64(0); b < keys; b++ {
		v, err := bareGet(t, sh, b)
		if err != nil {
			t.Fatalf("post-heal get %d: %v", b, err)
		}
		checkStamp(t, b, v)
	}
}

// TestShardHealBackoffCap: without a checkpoint every attempt is
// in-place; repeated failures saturate the backoff at the cap, and a
// later attempt succeeds once the media damage is reverted — with no
// data loss, since in-place healing never discards writes.
func TestShardHealBackoffCap(t *testing.T) {
	sh := newBareShard(t, "leaf", 128<<10)
	const keys = 48
	for b := uint64(0); b < keys; b++ {
		barePut(t, sh, b, stamp(b))
	}
	sh.now += sh.ctrl.Flush(sh.now)
	idxs := sh.dev.Indices(scm.Counter)
	if !sh.dev.TamperByte(scm.Counter, idxs[0], 7, 0x11) {
		t.Fatal("tamper failed")
	}
	sh.inj.Detach()
	sh.fail()
	for i := 0; i < 5; i++ {
		sh.healOnce()
		if h := shardHealth(sh.health.Load()); h != healthQuarantined {
			t.Fatalf("heal attempt %d succeeded on tampered media", i+1)
		}
	}
	if sh.healWait != sh.healBackoffMax {
		t.Fatalf("backoff = %v, want cap %v", sh.healWait, sh.healBackoffMax)
	}
	if got := sh.m.healAttempts.Load(); got != 5 {
		t.Fatalf("heal_attempts = %d, want 5", got)
	}
	// Revert the damage (XOR is its own inverse); the next attempt
	// restores service with every write intact.
	sh.dev.TamperByte(scm.Counter, idxs[0], 7, 0x11)
	sh.healOnce()
	if h := shardHealth(sh.health.Load()); h != healthServing {
		t.Fatal("heal after media repair did not restore service")
	}
	for b := uint64(0); b < keys; b++ {
		v, err := bareGet(t, sh, b)
		if err != nil {
			t.Fatalf("post-heal get %d: %v", b, err)
		}
		checkStamp(t, b, v)
	}
}

// TestStoreQuarantineHealsLive quarantines a live shard through the
// public API and waits for the supervised heal loop to restore it,
// with every acknowledged key intact.
func TestStoreQuarantineHealsLive(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 2
	cfg.HealBackoff = 2 * time.Millisecond
	cfg.HealBackoffMax = 10 * time.Millisecond
	s := mustOpen(t, cfg)
	ctx := context.Background()
	const keyspace = 100
	for key := uint64(0); key < keyspace; key++ {
		if err := s.Put(ctx, key, stamp(key)); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	if err := s.Quarantine(ctx, 1); err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ss := s.Stats().Shards[1]
		if ss.Health == "serving" && ss.Heals >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never healed: %+v", ss)
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap := s.Stats()
	if snap.Shards[1].Failures == 0 || snap.Shards[1].HealAttempts == 0 {
		t.Fatalf("quarantine episode not accounted: %+v", snap.Shards[1])
	}
	for key := uint64(0); key < keyspace; key++ {
		v, err := s.Get(ctx, key)
		if err != nil {
			t.Fatalf("post-heal get %d: %v", key, err)
		}
		checkStamp(t, key, v)
	}
}

// TestStoreQuarantineExhaustsAttempts: with healing disabled the
// quarantined shard stays down — the pre-heal behavior, selectable.
func TestStoreQuarantineExhaustsAttempts(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 2
	cfg.HealMaxAttempts = -1
	s := mustOpen(t, cfg)
	ctx := context.Background()
	if err := s.Put(ctx, 1, stamp(1)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Quarantine(ctx, 1); err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if ss := s.Stats().Shards[1]; ss.Health != "quarantined" || ss.HealAttempts != 0 {
		t.Fatalf("heal ran with healing disabled: %+v", ss)
	}
	if err := s.Put(ctx, 1, stamp(1)); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("put to dead shard: %v, want ErrShardFailed", err)
	}
	// The untouched shard is unaffected.
	if err := s.Put(ctx, 0, stamp(0)); err != nil {
		t.Fatalf("put to healthy shard: %v", err)
	}
}

// TestStoreServeDuringRecoveryMatrix is the chaos-matrix extension
// for online recovery: for every protocol × fault kind, concurrent
// clients hammer the store while every shard rebuilds online, with
// zero integrity violations and no foreign or stale-and-silent reads;
// then the standard fault injection runs, and finally the victim
// shard is quarantined and must heal back into service.
func TestStoreServeDuringRecoveryMatrix(t *testing.T) {
	for _, protocol := range []string{"leaf", "amnt"} {
		for _, kind := range []string{"torn", "drop", "reorder", "bitrot"} {
			t.Run(protocol+"/"+kind, func(t *testing.T) {
				cfg := testConfig()
				cfg.Shards = 2
				cfg.Protocol = protocol
				cfg.RecoveryChunk = 1 // maximize the degraded window
				cfg.HealBackoff = 2 * time.Millisecond
				cfg.HealBackoffMax = 10 * time.Millisecond
				s := mustOpen(t, cfg)
				ctx := context.Background()
				const keyspace = uint64(200)
				// Two identical seed rounds (see TestStoreChaosMatrix:
				// makes a legal in-flight revert land on identical
				// bytes).
				for round := 0; round < 2; round++ {
					for key := uint64(0); key < keyspace; key++ {
						if err := s.Put(ctx, key, stamp(key)); err != nil {
							t.Fatalf("seed put %d: %v", key, err)
						}
					}
				}

				// Concurrent clients across the online power cycle.
				var stop atomic.Bool
				var wg sync.WaitGroup
				errCh := make(chan error, 4)
				for c := 0; c < 4; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for i := 0; !stop.Load(); i++ {
							key := uint64(c*1733+i) % keyspace
							var err error
							if i%3 == 0 {
								err = s.Put(ctx, key, stamp(key))
							} else {
								var v []byte
								v, err = s.Get(ctx, key)
								if err == nil {
									if len(v) != 16 {
										errCh <- fmt.Errorf("key %d: bad value %x", key, v)
										return
									}
								}
							}
							// Explicit degradation signals are the
							// contract; anything else is a failure.
							if err != nil && !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrRecovering) {
								errCh <- fmt.Errorf("client %d key %d: %w", c, key, err)
								return
							}
						}
					}(c)
				}
				time.Sleep(5 * time.Millisecond)
				if err := s.Recover(ctx); err != nil {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("online recover: %v", err)
				}
				time.Sleep(30 * time.Millisecond)
				stop.Store(true)
				wg.Wait()
				close(errCh)
				for err := range errCh {
					t.Fatal(err)
				}

				// Rebuilds complete once the queues go idle.
				deadline := time.Now().Add(10 * time.Second)
				for {
					snap := s.Stats()
					allServing := true
					for _, ss := range snap.Shards {
						if ss.Health != "serving" {
							allServing = false
						}
						if ss.IntegrityErrs != 0 {
							t.Fatalf("shard %d: %d integrity errors during degraded serving", ss.Shard, ss.IntegrityErrs)
						}
					}
					if allServing {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("rebuild never completed: %+v", snap.Shards)
					}
					time.Sleep(time.Millisecond)
				}
				// Every key reads back its own stamp after the audit.
				for key := uint64(0); key < keyspace; key++ {
					v, err := s.Get(ctx, key)
					if err != nil {
						t.Fatalf("key %d after online recovery: %v", key, err)
					}
					checkStamp(t, key, v)
				}

				// One more full write round (repopulates the fault
				// journal the detached-injector recovery skipped), then
				// the standard fault cell.
				for key := uint64(0); key < keyspace; key++ {
					if err := s.Put(ctx, key, stamp(key)); err != nil {
						t.Fatalf("rewrite %d: %v", key, err)
					}
				}
				res, err := s.Chaos(ctx, ChaosSpec{Shard: 1, Kind: kind, Seed: 42})
				if err != nil {
					t.Fatalf("chaos: %v", err)
				}
				if res.Status == "violation" {
					t.Fatalf("silent corruption: %+v", res)
				}
				if !res.Serving {
					t.Fatalf("shard out of service after %s: %+v", kind, res)
				}
				mayMiss := map[uint64]bool{}
				if res.Status == "recovered" {
					for _, blk := range res.DataBlocks {
						mayMiss[blk*uint64(cfg.Shards)+1] = true
					}
				}

				// Quarantine the chaos victim; the heal loop must bring
				// it back under this fault kind's end state.
				if err := s.Quarantine(ctx, 1); err != nil {
					t.Fatalf("quarantine: %v", err)
				}
				deadline = time.Now().Add(10 * time.Second)
				for {
					ss := s.Stats().Shards[1]
					if ss.Health == "serving" && ss.Heals >= 1 {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("victim shard never healed: %+v", ss)
					}
					time.Sleep(2 * time.Millisecond)
				}
				for key := uint64(0); key < keyspace; key++ {
					v, err := s.Get(ctx, key)
					if errors.Is(err, ErrNotFound) && mayMiss[key] {
						continue
					}
					if err != nil {
						t.Fatalf("key %d after heal (%s): %v", key, res.Status, err)
					}
					checkStamp(t, key, v)
				}
			})
		}
	}
}

// TestStoreDegradedBootFromCheckpoint: reopening a checkpointed store
// must serve correct data immediately — Open returns with shards in
// recovering state and the rebuild completes in the background.
func TestStoreDegradedBootFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CheckpointDir = dir
	cfg.RecoveryChunk = 1
	ctx := context.Background()

	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const keyspace = uint64(300)
	for key := uint64(0); key < keyspace; key++ {
		if err := s.Put(ctx, key, stamp(key)); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2 := mustOpen(t, cfg)
	// First requests land while the rebuild is (or may still be) in
	// flight; they must be served, verified, and correct.
	for key := uint64(0); key < keyspace; key++ {
		v, err := s2.Get(ctx, key)
		if err != nil {
			t.Fatalf("degraded-boot get %d: %v", key, err)
		}
		checkStamp(t, key, v)
	}
	// Writes during/after the degraded boot are acknowledged durably.
	for key := keyspace; key < keyspace+32; key++ {
		if err := s2.Put(ctx, key, stamp(key)); err != nil {
			t.Fatalf("degraded-boot put %d: %v", key, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := s2.Stats()
		allServing := true
		for _, ss := range snap.Shards {
			if ss.Health != "serving" {
				allServing = false
			}
		}
		if allServing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("boot rebuild never completed: %+v", snap.Shards)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s2.Recover(ctx); err != nil {
		t.Fatalf("post-boot recover: %v", err)
	}
	for key := uint64(0); key < keyspace+32; key++ {
		v, err := s2.Get(ctx, key)
		if err != nil {
			t.Fatalf("post-boot get %d: %v", key, err)
		}
		checkStamp(t, key, v)
	}
}
