package store

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestStoreBatchAPI covers the batch-first surface: PutBatch/GetBatch
// round-trip values across shards with per-key error reporting, and
// client-side validation failures never consume queue slots.
func TestStoreBatchAPI(t *testing.T) {
	s := mustOpen(t, testConfig())
	ctx := context.Background()

	kvs := make([]KV, 0, 100)
	for key := uint64(0); key < 100; key++ {
		kvs = append(kvs, KV{Key: key, Value: stamp(key)})
	}
	for i, err := range s.PutBatch(ctx, kvs) {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	keys := make([]uint64, 0, 101)
	for key := uint64(0); key < 100; key++ {
		keys = append(keys, key)
	}
	keys = append(keys, 4242) // never written
	values, errs := s.GetBatch(ctx, keys)
	for i := 0; i < 100; i++ {
		if errs[i] != nil {
			t.Fatalf("get %d: %v", keys[i], errs[i])
		}
		checkStamp(t, keys[i], values[i])
	}
	if !errors.Is(errs[100], ErrNotFound) {
		t.Fatalf("unwritten key: %v", errs[100])
	}

	// Per-key validation errors surface in place without failing the
	// rest of the batch.
	mixed := []KV{
		{Key: 1, Value: stamp(1)},
		{Key: 2, Value: make([]byte, MaxValueLen+1)},
		{Key: 1 << 60, Value: stamp(0)},
		{Key: 3, Value: stamp(3)},
	}
	errs = s.PutBatch(ctx, mixed)
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid keys failed: %v %v", errs[0], errs[3])
	}
	if !errors.Is(errs[1], ErrValueTooLarge) {
		t.Fatalf("oversized value: %v", errs[1])
	}
	if !errors.Is(errs[2], ErrOutOfRange) {
		t.Fatalf("out-of-range key: %v", errs[2])
	}
	gv, gerrs := s.GetBatch(ctx, []uint64{1 << 60})
	if !errors.Is(gerrs[0], ErrOutOfRange) || gv[0] != nil {
		t.Fatalf("out-of-range get: %v %v", gv[0], gerrs[0])
	}

	// Empty batches are legal no-ops.
	if errs := s.PutBatch(ctx, nil); len(errs) != 0 {
		t.Fatalf("empty put batch: %v", errs)
	}
	if values, errs := s.GetBatch(ctx, nil); len(values) != 0 || len(errs) != 0 {
		t.Fatal("empty get batch returned entries")
	}
}

// TestStoreBatchEpochDurability is the acked-batch durability
// contract: every key acknowledged through PutBatch (and therefore
// through a group-commit epoch) survives a clean power cycle.
func TestStoreBatchEpochDurability(t *testing.T) {
	for _, protocol := range []string{"leaf", "amnt"} {
		t.Run(protocol, func(t *testing.T) {
			cfg := testConfig()
			cfg.Protocol = protocol
			s := mustOpen(t, cfg)
			ctx := context.Background()

			keyspace := uint64(256)
			kvs := make([]KV, 0, keyspace)
			for key := uint64(0); key < keyspace; key++ {
				kvs = append(kvs, KV{Key: key, Value: stamp(key)})
			}
			for i, err := range s.PutBatch(ctx, kvs) {
				if err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			if err := s.Recover(ctx); err != nil {
				t.Fatalf("power cycle: %v", err)
			}
			values, errs := s.GetBatch(ctx, keysUpTo(keyspace))
			for i := range errs {
				if errs[i] != nil {
					t.Fatalf("acked key %d lost: %v", i, errs[i])
				}
				checkStamp(t, uint64(i), values[i])
			}
			if snap := s.Stats(); totalEpochs(snap) == 0 {
				t.Fatal("no epochs committed — batch path not exercised")
			}
		})
	}
}

// TestStoreBatchEpochChaos drives fault-laden power failures whose
// captured persist window spans group-commit epochs: acked batch
// members must show all-or-prefix survival — each either holds its
// acknowledged value or, when the fault provably hit that block's
// in-flight persist, its previous durable version; never garbage,
// never a silent violation.
func TestStoreBatchEpochChaos(t *testing.T) {
	for _, protocol := range []string{"leaf", "amnt"} {
		for _, kind := range []string{"torn", "drop", "reorder"} {
			t.Run(protocol+"/"+kind, func(t *testing.T) {
				cfg := testConfig()
				cfg.Shards = 2
				cfg.Protocol = protocol
				s := mustOpen(t, cfg)
				ctx := context.Background()
				keyspace := uint64(200)
				// Two rounds so a legal rollback lands on the same
				// bytes (see TestStoreChaosMatrix).
				kvs := make([]KV, 0, keyspace)
				for key := uint64(0); key < keyspace; key++ {
					kvs = append(kvs, KV{Key: key, Value: stamp(key)})
				}
				for round := 0; round < 2; round++ {
					for i, err := range s.PutBatch(ctx, kvs) {
						if err != nil {
							t.Fatalf("round %d put %d: %v", round, i, err)
						}
					}
				}
				res, err := s.Chaos(ctx, ChaosSpec{Shard: 1, Kind: kind, Seed: 99})
				if err != nil {
					t.Fatalf("chaos: %v", err)
				}
				if res.Status == "violation" {
					t.Fatalf("silent corruption: %+v", res)
				}
				if !res.Serving {
					t.Fatalf("shard out of service: %+v", res)
				}
				mayMiss := map[uint64]bool{}
				if res.Status == "recovered" {
					for _, blk := range res.DataBlocks {
						mayMiss[blk*uint64(cfg.Shards)+1] = true
					}
				}
				values, errs := s.GetBatch(ctx, keysUpTo(keyspace))
				for key := uint64(0); key < keyspace; key++ {
					if errors.Is(errs[key], ErrNotFound) && mayMiss[key] {
						continue
					}
					if errs[key] != nil {
						t.Fatalf("key %d after chaos (%s): %v", key, res.Status, errs[key])
					}
					checkStamp(t, key, values[key])
				}
				if snap := s.Stats(); totalEpochs(snap) == 0 {
					t.Fatal("chaos ran without any committed epoch in the window")
				}
			})
		}
	}
}

// TestStoreExpiredContextNack is the shutdown-drain regression test:
// a queued request whose context already expired must be answered with
// the context's error, never acknowledged as a success the caller will
// treat as durable.
func TestStoreExpiredContextNack(t *testing.T) {
	s, err := Open(testConfig())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	// Hand-enqueue abandoned requests (their submitters timed out) and
	// one live request, then close: the drain must nack the abandoned
	// ones and still serve the live one.
	var dead []chan response
	var live chan response
	for i := 0; i < 8; i++ {
		sh, block, _ := s.shardFor(uint64(i))
		req := request{op: opPut, ctx: expired, block: block, value: stamp(uint64(i)), resp: make(chan response, 1)}
		if i == 3 {
			req.ctx = context.Background()
			live = req.resp
		} else {
			dead = append(dead, req.resp)
		}
		select {
		case sh.ch <- req:
		default:
			t.Fatalf("queue full at %d", i)
		}
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i, ch := range dead {
		select {
		case r := <-ch:
			if !errors.Is(r.err, context.DeadlineExceeded) {
				t.Fatalf("abandoned request %d answered %v, want deadline exceeded", i, r.err)
			}
		default:
			t.Fatalf("abandoned request %d dropped", i)
		}
	}
	select {
	case r := <-live:
		if r.err != nil {
			t.Fatalf("live request failed: %v", r.err)
		}
	default:
		t.Fatal("live request dropped")
	}
}

// TestStoreEpochDisabled pins the EpochMax=1 escape hatch: the per-op
// write path serves everything and no epochs are committed.
func TestStoreEpochDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.EpochMax = 1
	s := mustOpen(t, cfg)
	ctx := context.Background()
	for i, err := range s.PutBatch(ctx, []KV{{Key: 1, Value: stamp(1)}, {Key: 2, Value: stamp(2)}}) {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	v, err := s.Get(ctx, 1)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	checkStamp(t, 1, v)
	if snap := s.Stats(); totalEpochs(snap) != 0 {
		t.Fatal("epochs committed with group commit disabled")
	}
}

// TestStoreEpochMetrics checks that group-commit accounting is
// published: epochs carry the write volume, and no commit degraded.
func TestStoreEpochMetrics(t *testing.T) {
	cfg := testConfig()
	cfg.EpochWait = time.Millisecond
	s := mustOpen(t, cfg)
	ctx := context.Background()
	kvs := make([]KV, 0, 64)
	for key := uint64(0); key < 64; key++ {
		kvs = append(kvs, KV{Key: key, Value: stamp(key)})
	}
	for _, err := range s.PutBatch(ctx, kvs) {
		if err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	snap := s.Stats()
	var ops, fallbacks uint64
	for _, sh := range snap.Shards {
		ops += sh.EpochOps
		fallbacks += sh.EpochFallback
	}
	if totalEpochs(snap) == 0 || ops != 64 {
		t.Fatalf("epochs=%d epoch_ops=%d, want all 64 writes epoch-committed", totalEpochs(snap), ops)
	}
	if fallbacks != 0 {
		t.Fatalf("unexpected degraded commits: %d", fallbacks)
	}
	for _, sh := range s.table().list {
		if h := sh.epochSizeHistogram(); snap.Shards[sh.id].Epochs > 0 && h.Total() == 0 {
			t.Fatalf("shard %d committed epochs but recorded no size samples", sh.id)
		}
	}
}

func keysUpTo(n uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	return keys
}

func totalEpochs(snap Snapshot) uint64 {
	var n uint64
	for _, sh := range snap.Shards {
		n += sh.Epochs
	}
	return n
}
