// Package cpu models the on-chip cache hierarchy in front of the
// secure memory controller: per-core L1/L2 (optionally a shared L3),
// write-back with write-allocate, and dirty-victim cascades that end
// in encrypted writes at the memory encryption engine. The paper's
// single-program, multiprogram, and multithread processor
// configurations (§6) are provided as presets.
package cpu

import (
	"amnt/internal/cache"
	"amnt/internal/mee"
	"amnt/internal/scm"
)

// ContentFunc supplies the current plaintext of a data block when a
// dirty line is written back to the MEE. The simulator derives block
// contents deterministically from (block, version) so the functional
// crypto path operates on real, checkable bytes without storing the
// whole memory image.
type ContentFunc func(block uint64) []byte

// LevelConfig sizes one cache level.
type LevelConfig struct {
	SizeBytes int
	Assoc     int
	HitCycles uint64
}

// Config describes one core's private hierarchy. Shared outer levels
// are attached separately via NewHierarchy.
type Config struct {
	L1 LevelConfig
	L2 LevelConfig
}

// SingleProgram returns the paper's single-program configuration:
// 32 kB L1D, 1 MB L2 (the 48 kB L1I is not modeled — the simulator is
// data-trace driven).
func SingleProgram() Config {
	return Config{
		L1: LevelConfig{SizeBytes: 32 << 10, Assoc: 8, HitCycles: 1},
		L2: LevelConfig{SizeBytes: 1 << 20, Assoc: 16, HitCycles: 12},
	}
}

// MultiProgram returns the paper's two-core configuration: 32 kB L1D
// and 128 kB private L2 per core (a 1 MB shared L3 is added by the
// machine).
func MultiProgram() Config {
	return Config{
		L1: LevelConfig{SizeBytes: 32 << 10, Assoc: 8, HitCycles: 1},
		L2: LevelConfig{SizeBytes: 128 << 10, Assoc: 8, HitCycles: 12},
	}
}

// MultiThread returns the paper's four-core SPEC configuration:
// 32 kB L1D, 512 kB private L2 (8 MB shared L3 added by the machine).
func MultiThread() Config {
	return Config{
		L1: LevelConfig{SizeBytes: 32 << 10, Assoc: 8, HitCycles: 1},
		L2: LevelConfig{SizeBytes: 512 << 10, Assoc: 8, HitCycles: 12},
	}
}

// SharedL3 builds a shared last-level cache of the given size.
func SharedL3(sizeBytes int) *cache.Cache {
	if sizeBytes == 0 {
		return nil
	}
	return cache.New(cache.Config{
		Name:      "L3",
		SizeBytes: sizeBytes,
		LineBytes: scm.BlockSize,
		Assoc:     16,
		HitCycles: 30,
	})
}

// Hierarchy is one core's view of the cache stack. Multiple cores may
// share the outermost level and always share the controller.
type Hierarchy struct {
	levels  []*cache.Cache
	shared  int // index of the first shared level, len(levels) if none
	ctrl    *mee.Controller
	content ContentFunc
	verify  func(block uint64, data []byte) error
	snoop   func(block uint64) bool
}

// SetVerify installs an oracle called with the plaintext of every MEE
// read this hierarchy performs; a non-nil return aborts the access.
// The simulator uses it as an end-to-end data-fidelity check.
func (h *Hierarchy) SetVerify(f func(block uint64, data []byte) error) { h.verify = f }

// SetSnoop installs the coherence probe used when an access misses
// the whole local stack: the machine queries the other cores' private
// caches, migrating a dirty copy here instead of reading stale bytes
// from memory (a minimal MESI-style dirty-migration protocol; only
// needed for shared-address-space configurations).
func (h *Hierarchy) SetSnoop(f func(block uint64) bool) { h.snoop = f }

// snoopLatency is the cross-core cache-to-cache transfer cost.
const snoopLatency = 60

// ExtractDirty removes every private copy of block from this
// hierarchy, reporting whether any was dirty (i.e. the caller now
// owns the only up-to-date copy). Shared levels are left alone: their
// copies are visible to every core and written back on eviction.
func (h *Hierarchy) ExtractDirty(block uint64) bool {
	dirty := false
	for i := 0; i < h.shared; i++ {
		if _, d := h.levels[i].Invalidate(block); d {
			dirty = true
		}
	}
	return dirty
}

// NewHierarchy builds a core hierarchy. shared may be nil (L2 is the
// LLC) or a cache shared between cores (typically from SharedL3).
func NewHierarchy(name string, cfg Config, shared *cache.Cache, ctrl *mee.Controller, content ContentFunc) *Hierarchy {
	l1 := cache.New(cache.Config{
		Name: name + ".L1", SizeBytes: cfg.L1.SizeBytes, LineBytes: scm.BlockSize,
		Assoc: cfg.L1.Assoc, HitCycles: cfg.L1.HitCycles,
	})
	l2 := cache.New(cache.Config{
		Name: name + ".L2", SizeBytes: cfg.L2.SizeBytes, LineBytes: scm.BlockSize,
		Assoc: cfg.L2.Assoc, HitCycles: cfg.L2.HitCycles,
	})
	levels := []*cache.Cache{l1, l2}
	sharedIdx := len(levels)
	if shared != nil {
		levels = append(levels, shared)
	}
	return &Hierarchy{levels: levels, shared: sharedIdx, ctrl: ctrl, content: content}
}

// Levels exposes the cache stack (L1 first).
func (h *Hierarchy) Levels() []*cache.Cache { return h.levels }

// Controller returns the MEE beneath this hierarchy.
func (h *Hierarchy) Controller() *mee.Controller { return h.ctrl }

// Access performs a load (write=false) or store (write=true) of the
// physical block. It returns the access latency in cycles, including
// any secure-memory work triggered by misses and dirty evictions.
func (h *Hierarchy) Access(now uint64, block uint64, write bool) (uint64, error) {
	var cycles uint64
	for i, c := range h.levels {
		cycles += c.HitCycles()
		hit, victim := c.Access(block, write && i == 0)
		if victim != nil && victim.Dirty {
			vc, err := h.spill(now+cycles, i+1, victim.Key)
			cycles += vc
			if err != nil {
				return cycles, err
			}
		}
		if hit {
			return cycles, nil
		}
	}
	// Missed the whole local stack. Another core's private cache may
	// hold the only up-to-date (dirty) copy; migrate it instead of
	// reading stale bytes from memory.
	if h.snoop != nil && h.snoop(block) {
		cycles += snoopLatency
		// This hierarchy now owns the dirty data: mark the L1 copy
		// (installed during the walk above) dirty so it is eventually
		// written back.
		if l := h.levels[0].Lookup(block); l != nil {
			l.Dirty = true
		}
		return cycles, nil
	}
	// Fetch through the MEE (stores are write-allocate, so they fetch
	// too). The block is now resident in every level; dirtiness was
	// set at L1 above.
	var buf [scm.BlockSize]byte
	mc, err := h.ctrl.ReadBlock(now+cycles, block, buf[:])
	cycles += mc
	if err != nil {
		return cycles, err
	}
	if h.verify != nil {
		if err := h.verify(block, buf[:]); err != nil {
			return cycles, err
		}
	}
	return cycles, nil
}

// spill installs a dirty victim into level idx (or the MEE when the
// hierarchy is exhausted), cascading further victims downward.
func (h *Hierarchy) spill(now uint64, idx int, block uint64) (uint64, error) {
	if idx >= len(h.levels) {
		return h.ctrl.WriteBlock(now, block, h.content(block))
	}
	c := h.levels[idx]
	cycles := c.HitCycles()
	_, victim := c.Access(block, true)
	if victim != nil && victim.Dirty {
		vc, err := h.spill(now+cycles, idx+1, victim.Key)
		cycles += vc
		if err != nil {
			return cycles, err
		}
	}
	return cycles, nil
}

// Drain writes every dirty line in this hierarchy back through the
// MEE (an orderly shutdown, or a full-system persist barrier). Shared
// levels are drained too, so call Drain on one hierarchy per shared
// level or accept idempotent extra scans.
func (h *Hierarchy) Drain(now uint64) (uint64, error) {
	var cycles uint64
	// Inner levels spill into outer ones first.
	for i, c := range h.levels {
		for _, key := range c.FlushDirty(nil) {
			if i+1 < len(h.levels) {
				vc, err := h.spill(now+cycles, i+1, key)
				cycles += vc
				if err != nil {
					return cycles, err
				}
			} else {
				vc, err := h.ctrl.WriteBlock(now+cycles, key, h.content(key))
				cycles += vc
				if err != nil {
					return cycles, err
				}
			}
		}
	}
	return cycles, nil
}

// InvalidateAll drops all cached lines without writeback (a crash's
// effect on the volatile hierarchy).
func (h *Hierarchy) InvalidateAll() {
	for _, c := range h.levels {
		c.InvalidateAll()
	}
}
