package cpu

import (
	"bytes"
	"errors"
	"testing"

	"amnt/internal/mee"
	"amnt/internal/scm"
)

// testRig builds a tiny two-level hierarchy over a leaf-persisted MEE
// with a content store the test controls.
type testRig struct {
	h        *Hierarchy
	ctrl     *mee.Controller
	contents map[uint64][]byte
}

func newRig(t *testing.T, shared bool) *testRig {
	t.Helper()
	dev := scm.New(scm.Config{CapacityBytes: 2 << 20, ReadCycles: 610, WriteCycles: 782})
	ctrl := mee.New(dev, mee.DefaultConfig(), mee.NewLeaf())
	rig := &testRig{ctrl: ctrl, contents: make(map[uint64][]byte)}
	cfg := Config{
		L1: LevelConfig{SizeBytes: 4 * 64, Assoc: 2, HitCycles: 1},
		L2: LevelConfig{SizeBytes: 16 * 64, Assoc: 4, HitCycles: 12},
	}
	sharedCache := SharedL3(0)
	if shared {
		sharedCache = SharedL3(64 * 64)
	}
	rig.h = NewHierarchy("t", cfg, sharedCache, ctrl, func(block uint64) []byte {
		if c, ok := rig.contents[block]; ok {
			return c
		}
		return make([]byte, scm.BlockSize)
	})
	return rig
}

func fill(seed byte) []byte {
	b := make([]byte, scm.BlockSize)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestPresets(t *testing.T) {
	if SingleProgram().L2.SizeBytes != 1<<20 {
		t.Fatal("single-program L2 should be 1 MB")
	}
	if MultiProgram().L2.SizeBytes != 128<<10 {
		t.Fatal("multiprogram L2 should be 128 kB")
	}
	if MultiThread().L2.SizeBytes != 512<<10 {
		t.Fatal("multithread L2 should be 512 kB")
	}
	if SharedL3(0) != nil {
		t.Fatal("SharedL3(0) should be nil")
	}
	if SharedL3(1<<20) == nil {
		t.Fatal("SharedL3(1MB) should exist")
	}
}

func TestHitIsCheap(t *testing.T) {
	rig := newRig(t, false)
	first, err := rig.h.Access(0, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	second, err := rig.h.Access(first, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if second >= first {
		t.Fatalf("L1 hit (%d) not cheaper than cold miss (%d)", second, first)
	}
	if second != rig.h.Levels()[0].HitCycles() {
		t.Fatalf("L1 hit = %d cycles, want %d", second, rig.h.Levels()[0].HitCycles())
	}
}

func TestDirtyEvictionReachesMEE(t *testing.T) {
	rig := newRig(t, false)
	// Store to block 0, then blow it out of both levels with a
	// conflicting stream; its content must land encrypted in SCM.
	rig.contents[0] = fill(9)
	if _, err := rig.h.Access(0, 0, true); err != nil {
		t.Fatal(err)
	}
	// L1: 2 sets x 2 ways; L2: 4 sets x 4 ways. Blocks ≡ 0 (mod 4)
	// collide with block 0 in L2.
	for i := uint64(1); i <= 20; i++ {
		if _, err := rig.h.Access(uint64(i)*1000, i*4, false); err != nil {
			t.Fatal(err)
		}
	}
	if !rig.ctrl.Device().Contains(scm.Data, 0) {
		t.Fatal("dirty block never written back to SCM")
	}
	// Read it back through the MEE and check the plaintext.
	var buf [scm.BlockSize]byte
	if _, err := rig.ctrl.ReadBlock(0, 0, buf[:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:], fill(9)) {
		t.Fatal("writeback content mismatch")
	}
}

func TestDrainFlushesEverything(t *testing.T) {
	rig := newRig(t, true)
	for i := uint64(0); i < 10; i++ {
		rig.contents[i] = fill(byte(i))
		if _, err := rig.h.Access(0, i, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rig.h.Drain(0); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if !rig.ctrl.Device().Contains(scm.Data, i) {
			t.Fatalf("block %d not drained", i)
		}
		var buf [scm.BlockSize]byte
		if _, err := rig.ctrl.ReadBlock(0, i, buf[:]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:], fill(byte(i))) {
			t.Fatalf("block %d drained wrong content", i)
		}
	}
	// Nothing dirty remains anywhere.
	for _, c := range rig.h.Levels() {
		if len(c.DirtyKeys(nil)) != 0 {
			t.Fatalf("%s still has dirty lines after drain", c.Config().Name)
		}
	}
}

func TestSharedL3BetweenCores(t *testing.T) {
	dev := scm.New(scm.Config{CapacityBytes: 2 << 20, ReadCycles: 610, WriteCycles: 782})
	ctrl := mee.New(dev, mee.DefaultConfig(), mee.NewLeaf())
	l3 := SharedL3(64 * 64)
	cfg := Config{
		L1: LevelConfig{SizeBytes: 4 * 64, Assoc: 2, HitCycles: 1},
		L2: LevelConfig{SizeBytes: 16 * 64, Assoc: 4, HitCycles: 12},
	}
	content := func(uint64) []byte { return make([]byte, scm.BlockSize) }
	h1 := NewHierarchy("c0", cfg, l3, ctrl, content)
	h2 := NewHierarchy("c1", cfg, l3, ctrl, content)
	// Core 0 pulls a block through all levels; core 1 should then hit
	// in the shared L3 without touching the MEE.
	if _, err := h1.Access(0, 77, false); err != nil {
		t.Fatal(err)
	}
	readsBefore := ctrl.Stats().DataReads.Value()
	if _, err := h2.Access(0, 77, false); err != nil {
		t.Fatal(err)
	}
	if ctrl.Stats().DataReads.Value() != readsBefore {
		t.Fatal("core 1 missed the shared L3")
	}
}

func TestInvalidateAllDropsDirty(t *testing.T) {
	rig := newRig(t, false)
	if _, err := rig.h.Access(0, 1, true); err != nil {
		t.Fatal(err)
	}
	rig.h.InvalidateAll()
	for _, c := range rig.h.Levels() {
		if c.Len() != 0 {
			t.Fatal("lines remain after InvalidateAll")
		}
	}
	// The dirty data was (deliberately) lost, not written back.
	if rig.ctrl.Device().Contains(scm.Data, 1) {
		t.Fatal("InvalidateAll must not write back")
	}
}

func TestVerifyHookRuns(t *testing.T) {
	rig := newRig(t, false)
	rig.contents[3] = fill(1)
	if _, err := rig.h.Access(0, 3, true); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.h.Drain(0); err != nil {
		t.Fatal(err)
	}
	rig.h.InvalidateAll()
	wantErr := errors.New("oracle mismatch")
	called := false
	rig.h.SetVerify(func(block uint64, data []byte) error {
		called = true
		if block == 3 && bytes.Equal(data, fill(1)) {
			return nil
		}
		return wantErr
	})
	if _, err := rig.h.Access(0, 3, false); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("verify hook not called on MEE read")
	}
	rig.h.InvalidateAll()
	rig.h.SetVerify(func(uint64, []byte) error { return wantErr })
	if _, err := rig.h.Access(0, 3, false); !errors.Is(err, wantErr) {
		t.Fatalf("verify error not surfaced: %v", err)
	}
}

func TestSnoopMigratesDirtyLine(t *testing.T) {
	dev := scm.New(scm.Config{CapacityBytes: 2 << 20, ReadCycles: 610, WriteCycles: 782})
	ctrl := mee.New(dev, mee.DefaultConfig(), mee.NewLeaf())
	cfg := Config{
		L1: LevelConfig{SizeBytes: 4 * 64, Assoc: 2, HitCycles: 1},
		L2: LevelConfig{SizeBytes: 16 * 64, Assoc: 4, HitCycles: 12},
	}
	content := func(uint64) []byte { return make([]byte, scm.BlockSize) }
	a := NewHierarchy("a", cfg, nil, ctrl, content)
	b := NewHierarchy("b", cfg, nil, ctrl, content)
	b.SetSnoop(func(block uint64) bool { return a.ExtractDirty(block) })

	// Core A dirties block 9 in its private cache.
	if _, err := a.Access(0, 9, true); err != nil {
		t.Fatal(err)
	}
	// Core B misses everywhere; the snoop must migrate A's dirty copy
	// instead of reading (stale) memory.
	readsBefore := ctrl.Stats().DataReads.Value()
	if _, err := b.Access(100, 9, false); err != nil {
		t.Fatal(err)
	}
	if ctrl.Stats().DataReads.Value() != readsBefore {
		t.Fatal("snooped access still read the MEE")
	}
	// A no longer holds the block; B's L1 copy carries the dirty bit.
	if a.Levels()[0].Probe(9) || a.Levels()[1].Probe(9) {
		t.Fatal("dirty copy not extracted from core A")
	}
	l := b.Levels()[0].Lookup(9)
	if l == nil || !l.Dirty {
		t.Fatal("migrated copy is not dirty in core B")
	}
}

func TestExtractDirtyLeavesSharedLevels(t *testing.T) {
	dev := scm.New(scm.Config{CapacityBytes: 2 << 20, ReadCycles: 610, WriteCycles: 782})
	ctrl := mee.New(dev, mee.DefaultConfig(), mee.NewLeaf())
	cfg := Config{
		L1: LevelConfig{SizeBytes: 4 * 64, Assoc: 2, HitCycles: 1},
		L2: LevelConfig{SizeBytes: 16 * 64, Assoc: 4, HitCycles: 12},
	}
	l3 := SharedL3(64 * 64)
	content := func(uint64) []byte { return make([]byte, scm.BlockSize) }
	h := NewHierarchy("c", cfg, l3, ctrl, content)
	if _, err := h.Access(0, 5, false); err != nil {
		t.Fatal(err)
	}
	if h.ExtractDirty(5) {
		t.Fatal("clean line reported dirty")
	}
	if !l3.Probe(5) {
		t.Fatal("ExtractDirty must not touch the shared level")
	}
	if h.Levels()[0].Probe(5) {
		t.Fatal("private copy should be gone")
	}
}
