package bmt

import (
	"testing"
	"testing/quick"

	"amnt/internal/cme"
	"amnt/internal/scm"
)

func eng() *cme.Engine { return cme.NewEngine(cme.Fast{}, 0xC0FFEE) }

func dev(capacity uint64) *scm.Device {
	return scm.New(scm.Config{CapacityBytes: capacity, ReadCycles: 1, WriteCycles: 1})
}

func TestGeometryPaperConfig(t *testing.T) {
	// 8 GB PCM: 2^21 counter-block leaves, 8 levels — the paper's
	// "8-level BMT" consistent with SGX.
	g := GeometryForCapacity(8 << 30)
	if g.Leaves != 1<<21 {
		t.Fatalf("leaves = %d, want 2^21", g.Leaves)
	}
	if g.Levels != 8 {
		t.Fatalf("levels = %d, want 8", g.Levels)
	}
	// Level 3 holds 64 nodes covering 128 MB each (paper §5).
	if got := g.NodesAt(3); got != 64 {
		t.Fatalf("nodes at level 3 = %d, want 64", got)
	}
	if got := g.CoverageBytes(3); got != 128<<20 {
		t.Fatalf("coverage at level 3 = %d, want 128 MiB", got)
	}
	if got := g.NodesAt(1); got != 1 {
		t.Fatalf("nodes at root = %d", got)
	}
	if got := g.NodesAt(8); got != 1<<21 {
		t.Fatalf("nodes at leaf level = %d", got)
	}
}

func TestGeometrySmallAndRagged(t *testing.T) {
	g := NewGeometry(10) // not a power of 8
	if g.Levels != 3 {   // 8^2 = 64 >= 10
		t.Fatalf("levels = %d, want 3", g.Levels)
	}
	if g.NodesAt(2) != 2 { // ceil(10/8)
		t.Fatalf("nodes at 2 = %d, want 2", g.NodesAt(2))
	}
	if g.NodesAt(3) != 10 {
		t.Fatalf("nodes at 3 = %d, want 10", g.NodesAt(3))
	}
	one := NewGeometry(1)
	if one.Levels != 2 {
		t.Fatalf("single-leaf levels = %d, want 2", one.Levels)
	}
}

func TestGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGeometry(0) should panic")
		}
	}()
	NewGeometry(0)
}

func TestAncestorAndSpan(t *testing.T) {
	g := NewGeometry(1 << 9) // 512 leaves, 4 levels
	if g.Levels != 4 {
		t.Fatalf("levels = %d", g.Levels)
	}
	if got := g.Ancestor(4, 100); got != 100 {
		t.Fatalf("self ancestor = %d", got)
	}
	if got := g.Ancestor(3, 100); got != 12 { // 100/8
		t.Fatalf("parent = %d, want 12", got)
	}
	if got := g.Ancestor(1, 100); got != 0 {
		t.Fatalf("root ancestor = %d", got)
	}
	lo, hi := g.LeafSpan(3, 12)
	if lo != 96 || hi != 104 {
		t.Fatalf("span = [%d,%d), want [96,104)", lo, hi)
	}
	lo, hi = g.LeafSpan(1, 0)
	if lo != 0 || hi != 512 {
		t.Fatalf("root span = [%d,%d)", lo, hi)
	}
}

func TestAncestorSpanProperty(t *testing.T) {
	g := NewGeometry(1 << 12)
	f := func(leaf uint64, lvl uint8) bool {
		leaf %= g.Leaves
		level := 1 + int(lvl)%g.Levels
		anc := g.Ancestor(level, leaf)
		lo, hi := g.LeafSpan(level, anc)
		return lo <= leaf && leaf < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParentChildRoundTrip(t *testing.T) {
	for slot := 0; slot < Arity; slot++ {
		cl, ci := Child(3, 7, slot)
		if cl != 4 {
			t.Fatalf("child level = %d", cl)
		}
		pl, pi := Parent(cl, ci)
		if pl != 3 || pi != 7 {
			t.Fatalf("parent of child = (%d,%d)", pl, pi)
		}
		if ChildSlot(ci) != slot {
			t.Fatalf("slot = %d, want %d", ChildSlot(ci), slot)
		}
	}
}

func TestFlatIndexDistinct(t *testing.T) {
	g := NewGeometry(1 << 9) // 4 levels; inner storage levels 2..3
	seen := make(map[uint64]bool)
	for l := 2; l <= g.Levels-1; l++ {
		for i := uint64(0); i < g.NodesAt(l); i++ {
			fi := g.FlatIndex(l, i)
			if seen[fi] {
				t.Fatalf("flat index collision at (%d,%d)", l, i)
			}
			seen[fi] = true
		}
	}
}

func TestFlatIndexPanicsOnRootAndLeaf(t *testing.T) {
	g := NewGeometry(64)
	for _, level := range []int{1, g.Levels} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FlatIndex(%d, 0) should panic", level)
				}
			}()
			g.FlatIndex(level, 0)
		}()
	}
}

func TestChildDigestHelpers(t *testing.T) {
	node := make([]byte, NodeSize)
	SetChildDigest(node, 3, 0xABCDEF)
	if got := ChildDigest(node, 3); got != 0xABCDEF {
		t.Fatalf("digest = %#x", got)
	}
	if got := ChildDigest(node, 2); got != 0 {
		t.Fatalf("neighbor digest = %#x, want 0", got)
	}
}

func TestZeroDigestsConsistent(t *testing.T) {
	e := eng()
	g := NewGeometry(1 << 9)
	zero := ZeroDigests(e, g)
	// The zero digest of level l must equal the hash of a node built
	// from level l+1 zero digests.
	for l := 1; l < g.Levels; l++ {
		node := make([]byte, NodeSize)
		for s := 0; s < Arity; s++ {
			SetChildDigest(node, s, zero[l+1])
		}
		if Hash(e, l, node) != zero[l] {
			t.Fatalf("zero digest inconsistent at level %d", l)
		}
	}
	zn := ZeroNode(e, g, 1)
	if Hash(e, 1, zn[:]) != zero[1] {
		t.Fatal("ZeroNode root hash mismatch")
	}
}

func TestRebuildEmptyTree(t *testing.T) {
	e := eng()
	d := dev(1 << 21) // 512 leaves
	g := GeometryForCapacity(1 << 21)
	res := Rebuild(d, e, g, 1, 0, false)
	zero := ZeroDigests(e, g)
	if res.Digest != zero[1] {
		t.Fatalf("empty rebuild digest = %#x, want zero root %#x", res.Digest, zero[1])
	}
	if res.CounterReads != 0 || res.NodeWrites != 0 {
		t.Fatalf("empty rebuild did I/O: %+v", res)
	}
}

func writeCounter(d *scm.Device, idx uint64, fill byte) {
	blk := make([]byte, scm.BlockSize)
	for i := range blk {
		blk[i] = fill
	}
	d.Write(scm.Counter, idx, blk)
}

func TestRebuildDetectsCounterChange(t *testing.T) {
	e := eng()
	d := dev(1 << 21)
	g := GeometryForCapacity(1 << 21)
	writeCounter(d, 5, 1)
	r1 := Rebuild(d, e, g, 1, 0, false)
	writeCounter(d, 5, 2)
	r2 := Rebuild(d, e, g, 1, 0, false)
	if r1.Digest == r2.Digest {
		t.Fatal("root digest did not change with counter contents")
	}
	writeCounter(d, 5, 1)
	r3 := Rebuild(d, e, g, 1, 0, false)
	if r3.Digest != r1.Digest {
		t.Fatal("rebuild is not deterministic on identical state")
	}
}

func TestRebuildPersistWritesInnerNodes(t *testing.T) {
	e := eng()
	d := dev(1 << 21) // 512 leaves, 4 levels => inner levels 2,3
	g := GeometryForCapacity(1 << 21)
	writeCounter(d, 0, 1)
	writeCounter(d, 511, 2)
	res := Rebuild(d, e, g, 1, 0, true)
	if res.CounterReads != 2 {
		t.Fatalf("counter reads = %d, want 2", res.CounterReads)
	}
	// Leaf 0 and 511 are in different level-2/level-3 subtrees:
	// expect 2 nodes at level 3 and 2 at level 2.
	if res.NodeWrites != 4 {
		t.Fatalf("node writes = %d, want 4", res.NodeWrites)
	}
	if d.BlocksWritten(scm.Tree) != 4 {
		t.Fatalf("tree blocks = %d, want 4", d.BlocksWritten(scm.Tree))
	}
}

func TestRebuildSubtreeMatchesWhole(t *testing.T) {
	e := eng()
	d := dev(1 << 21)
	g := GeometryForCapacity(1 << 21)
	for i := uint64(0); i < 20; i++ {
		writeCounter(d, i*13, byte(i+1))
	}
	whole := Rebuild(d, e, g, 1, 0, false)
	// Recomputing each level-2 child independently and hashing the
	// concatenation must equal the whole-tree root content.
	node := make([]byte, NodeSize)
	for slot := 0; slot < Arity; slot++ {
		sub := Rebuild(d, e, g, 2, uint64(slot), false)
		SetChildDigest(node, slot, sub.Digest)
	}
	for slot := 0; slot < Arity; slot++ {
		if ChildDigest(node, slot) != ChildDigest(whole.Content[:], slot) {
			t.Fatalf("slot %d digest mismatch", slot)
		}
	}
	if Hash(e, 1, node) != whole.Digest {
		t.Fatal("composed root digest != whole rebuild digest")
	}
}

func TestRebuildLeafLevel(t *testing.T) {
	e := eng()
	d := dev(1 << 21)
	g := GeometryForCapacity(1 << 21)
	writeCounter(d, 7, 3)
	res := Rebuild(d, e, g, g.Levels, 7, false)
	blk := make([]byte, scm.BlockSize)
	d.Read(scm.Counter, 7, blk)
	if res.Digest != Hash(e, g.Levels, blk) {
		t.Fatal("leaf-level rebuild digest mismatch")
	}
	// An absent leaf rebuilds to the leaf zero digest.
	zero := ZeroDigests(e, g)
	if got := Rebuild(d, e, g, g.Levels, 8, false).Digest; got != zero[g.Levels] {
		t.Fatalf("absent leaf digest = %#x, want %#x", got, zero[g.Levels])
	}
}

// Property: rebuilding twice from the same device state is
// deterministic, and any single-byte tamper of an occupied counter
// block changes the root digest.
func TestRebuildTamperProperty(t *testing.T) {
	e := eng()
	g := GeometryForCapacity(1 << 21)
	f := func(leafSeed []uint64, tamperPick uint16, mask byte) bool {
		if len(leafSeed) == 0 {
			return true
		}
		if mask == 0 {
			mask = 1
		}
		d := dev(1 << 21)
		for i, s := range leafSeed {
			writeCounter(d, s%g.Leaves, byte(i+1))
		}
		before := Rebuild(d, e, g, 1, 0, false).Digest
		occupied := d.Indices(scm.Counter)
		victim := occupied[int(tamperPick)%len(occupied)]
		d.TamperByte(scm.Counter, victim, int(tamperPick)%scm.BlockSize, mask)
		after := Rebuild(d, e, g, 1, 0, false).Digest
		return before != after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildAboveMatchesFullRebuild(t *testing.T) {
	e := eng()
	d := dev(1 << 21) // 512 leaves, 4 levels
	g := GeometryForCapacity(1 << 21)
	for i := uint64(0); i < 30; i++ {
		writeCounter(d, i, byte(i+1)) // consecutive: few level-3 parents
	}
	// Persist the whole tree so every level is current in the device.
	full := Rebuild(d, e, g, 1, 0, true)
	// Rebuilding from level 3 (the deepest inner level) must agree.
	above := RebuildAbove(d, e, g, 3, false)
	if above.Content != full.Content {
		t.Fatal("RebuildAbove(3) root content differs from full rebuild")
	}
	if above.Digest != full.Digest {
		t.Fatal("digest mismatch")
	}
	// And it must be cheaper: boundary nodes, not counters.
	if above.CounterReads >= full.CounterReads {
		t.Fatalf("boundary reads %d not cheaper than counter reads %d",
			above.CounterReads, full.CounterReads)
	}
}

func TestRebuildAboveEmptyAndClamps(t *testing.T) {
	e := eng()
	d := dev(1 << 21)
	g := GeometryForCapacity(1 << 21)
	zero := ZeroDigests(e, g)
	if got := RebuildAbove(d, e, g, 3, false).Digest; got != zero[1] {
		t.Fatalf("empty tree digest = %#x, want zero root", got)
	}
	if got := RebuildAbove(d, e, g, 2, false).Digest; got != zero[1] {
		t.Fatal("boundary<=2 should report the zero root trivially")
	}
	// boundary beyond the leaf level clamps to a full leaf rebuild.
	writeCounter(d, 3, 9)
	full := Rebuild(d, e, g, 1, 0, false)
	if got := RebuildAbove(d, e, g, 99, false); got.Digest != full.Digest {
		t.Fatal("clamped rebuild differs from full rebuild")
	}
}
