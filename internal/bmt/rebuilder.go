package bmt

import (
	"slices"

	"amnt/internal/cme"
	"amnt/internal/scm"
)

// Rebuilder is a resumable front for the rebuild engine: the same
// leaf-hash / climb / persist pipeline as RebuildWith, but split into
// bounded Step calls so a serving goroutine can interleave rebuild
// work with foreground traffic. When no overrides are supplied the
// final RebuildResult and the device statistics are bit-identical to
// a serial RebuildWith over the same span (pinned by test), because
// Step replays the serial loop exactly — sorted occupied leaves, one
// Read + one Hash each — and the climb runs once at the end.
//
// Overrides support degraded serving: a foreground write that lands
// on counter leaf L mid-rebuild snapshots L's pre-write content and
// registers it as an override, so the audit hashes the frozen image
// the crash left behind rather than the moving target. A nil override
// marks a leaf that did not exist at freeze time (first-touch during
// degraded serving); such leaves are excluded from the rebuild span
// entirely. Override reads are charged through scm.AccountReads so
// cycle sums stay comparable to the blocking path.
//
// A Rebuilder is single-goroutine: the owner calls Step/Done/Result
// from one goroutine (the shard worker), never concurrently.
type Rebuilder struct {
	dev       *scm.Device
	e         *cme.Engine
	g         Geometry
	zero      []uint64
	rootLevel int
	rootIdx   uint64
	opts      RebuildOptions
	frozen    map[uint64][]byte

	idxs []uint64
	digs []uint64
	pos  int
	res  RebuildResult
	done bool
	open bool // Progress.begin called, end pending
}

// NewRebuilder plans a resumable rebuild of the subtree rooted at
// (rootLevel, rootIdx). frozen maps counter-leaf indices to their
// content at freeze time: a non-nil entry overrides the device block,
// a nil entry excludes the leaf (it was absent at freeze time). The
// map may be nil. opts.Workers is ignored — Step always runs the
// serial pipeline, since resumability is the point.
func NewRebuilder(dev *scm.Device, e *cme.Engine, g Geometry, rootLevel int, rootIdx uint64, opts RebuildOptions, frozen map[uint64][]byte) *Rebuilder {
	lo, hi := g.LeafSpan(rootLevel, rootIdx)
	idxs := dev.Indices(scm.Counter)
	n := 0
	for _, li := range idxs {
		if li < lo || li >= hi {
			continue
		}
		if ov, ok := frozen[li]; ok && ov == nil {
			continue // first-touch after freeze: not part of the crash image
		}
		idxs[n] = li
		n++
	}
	idxs = idxs[:n]
	slices.Sort(idxs)
	r := &Rebuilder{
		dev:       dev,
		e:         e,
		g:         g,
		zero:      ZeroDigests(e, g),
		rootLevel: rootLevel,
		rootIdx:   rootIdx,
		opts:      opts,
		frozen:    frozen,
		idxs:      idxs,
		digs:      make([]uint64, len(idxs)),
	}
	r.opts.Progress.begin(uint64(len(idxs)))
	r.open = true
	return r
}

// Remaining reports how many source leaves have not been hashed yet.
func (r *Rebuilder) Remaining() int { return len(r.idxs) - r.pos }

// Done reports whether the rebuild has completed (Result is valid).
func (r *Rebuilder) Done() bool { return r.done }

// Step hashes up to maxLeaves more source leaves (all of them when
// maxLeaves <= 0) and, once every leaf is consumed, runs the climb
// and finishes the rebuild. It returns true when the rebuild is done.
func (r *Rebuilder) Step(maxLeaves int) bool {
	if r.done {
		return true
	}
	end := len(r.idxs)
	if maxLeaves > 0 && r.pos+maxLeaves < end {
		end = r.pos + maxLeaves
	}
	var buf [scm.BlockSize]byte
	for ; r.pos < end; r.pos++ {
		idx := r.idxs[r.pos]
		if ov := r.frozen[idx]; ov != nil {
			copy(buf[:], ov)
			r.res.Cycles += r.dev.AccountReads(scm.Counter, 1)
		} else {
			r.res.Cycles += r.dev.Read(scm.Counter, idx, buf[:])
		}
		r.res.CounterReads++
		r.digs[r.pos] = Hash(r.e, r.g.Levels, buf[:])
		r.opts.Progress.add(1)
	}
	if r.pos < len(r.idxs) {
		return false
	}
	idxs, digs := climb(r.e, r.g, r.zero, r.g.Levels, r.rootLevel, r.idxs, r.digs,
		persistEmitter(r.dev, r.g, r.rootLevel, r.rootIdx, r.opts.Persist, &r.res))
	finish(r.zero, r.g, r.rootLevel, idxs, digs, r.rootIdx, &r.res)
	r.done = true
	r.close()
	return true
}

// Result returns the completed rebuild's result. It panics if the
// rebuild has not finished — poll Done or the return of Step first.
func (r *Rebuilder) Result() RebuildResult {
	if !r.done {
		panic("bmt: Rebuilder.Result before completion")
	}
	return r.res
}

// Abort tears down an unfinished rebuild (closing its Progress
// bracket). Safe to call on a finished or already-aborted Rebuilder.
func (r *Rebuilder) Abort() { r.close() }

func (r *Rebuilder) close() {
	if r.open {
		r.open = false
		r.opts.Progress.end()
	}
}
