// Package bmt implements the Bonsai Merkle Tree: an 8-ary general BMT
// (inner nodes are the concatenated keyed digests of their eight
// children) whose leaves are the split-counter blocks of counter-mode
// encryption.
//
// Level numbering follows the paper: the root is level 1 and level k
// holds 8^(k-1) nodes, so a subtree root "at level 3" is one of 64
// nodes, each covering 1/64th of physical memory (Table 4's 1.56%
// stale fraction). The leaf level holds the counter blocks themselves;
// they are stored in the device's Counter region, while inner levels
// 2..L-1 live in the Tree region. The level-1 node (the root content)
// is never stored in untrusted memory — it lives in an on-chip
// register owned by the memory controller.
//
// The simulated device is sparse, so the package precomputes the
// digest of an all-zero subtree at every level ("zero digests"); an
// absent child contributes its level's zero digest, making tree
// construction and recovery O(occupied footprint) instead of
// O(memory size).
package bmt

import (
	"encoding/binary"
	"fmt"
	"sort"

	"amnt/internal/cme"
	"amnt/internal/scm"
)

// Arity is the tree fan-out.
const Arity = 8

// arityShift is log2(Arity).
const arityShift = 3

// NodeSize is the byte size of a tree node (Arity children × 8-byte
// digests), equal to one device block.
const NodeSize = Arity * cme.MACSize

// Geometry captures the shape of the tree over a given number of
// counter-block leaves.
type Geometry struct {
	// Leaves is the number of counter blocks covered (capacity/4 KB).
	Leaves uint64
	// Levels is the total number of levels including the leaf level;
	// the root is level 1, leaves are level Levels.
	Levels int
	// levelOffset[l] is the flat Tree-region offset of level l's first
	// node, defined for inner levels 2..Levels-1.
	levelOffset []uint64
}

// NewGeometry builds the geometry for the given leaf count. It panics
// if leaves is zero (an empty tree has no meaningful root).
func NewGeometry(leaves uint64) Geometry {
	if leaves == 0 {
		panic("bmt: geometry requires at least one leaf")
	}
	levels := 1
	for capacity := uint64(1); capacity < leaves; capacity <<= arityShift {
		levels++
	}
	if levels < 2 {
		levels = 2 // always keep a distinct root above the leaves
	}
	g := Geometry{Leaves: leaves, Levels: levels}
	g.levelOffset = make([]uint64, levels+1)
	off := uint64(0)
	for l := 2; l <= levels-1; l++ {
		g.levelOffset[l] = off
		off += capacityAt(l)
	}
	return g
}

// GeometryForCapacity builds the geometry for a data capacity in
// bytes (one leaf per 4 KB page).
func GeometryForCapacity(capacityBytes uint64) Geometry {
	leaves := capacityBytes / 4096
	if leaves == 0 {
		leaves = 1
	}
	return NewGeometry(leaves)
}

// capacityAt returns the theoretical node count of a level: 8^(l-1).
func capacityAt(level int) uint64 { return 1 << (arityShift * (level - 1)) }

// NodesAt returns the number of occupied node slots at a level —
// ceil(Leaves / 8^(Levels-level)) — i.e. how many nodes have at least
// one real leaf underneath them.
func (g Geometry) NodesAt(level int) uint64 {
	if level < 1 || level > g.Levels {
		panic(fmt.Sprintf("bmt: level %d out of range [1,%d]", level, g.Levels))
	}
	shift := uint(arityShift * (g.Levels - level))
	return (g.Leaves + (1 << shift) - 1) >> shift
}

// Ancestor returns the index at the given level of the ancestor of
// leaf leafIdx.
func (g Geometry) Ancestor(level int, leafIdx uint64) uint64 {
	return leafIdx >> uint(arityShift*(g.Levels-level))
}

// LeafSpan returns the half-open range [lo, hi) of leaf indices
// covered by node (level, idx).
func (g Geometry) LeafSpan(level int, idx uint64) (lo, hi uint64) {
	shift := uint(arityShift * (g.Levels - level))
	return idx << shift, (idx + 1) << shift
}

// CoverageBytes returns how many bytes of data one node at the given
// level protects (LeafSpan size × 4 KB), clamped to the real capacity.
func (g Geometry) CoverageBytes(level int) uint64 {
	lo, hi := g.LeafSpan(level, 0)
	span := hi - lo
	if span > g.Leaves {
		span = g.Leaves
	}
	return span * 4096
}

// Parent returns the (level, index) of a node's parent.
func Parent(level int, idx uint64) (int, uint64) { return level - 1, idx >> arityShift }

// ChildSlot returns a node's slot (0..7) within its parent.
func ChildSlot(idx uint64) int { return int(idx & (Arity - 1)) }

// Child returns the (level, index) of the slot-th child of node
// (level, idx).
func Child(level int, idx uint64, slot int) (int, uint64) {
	return level + 1, idx<<arityShift | uint64(slot)
}

// FlatIndex maps an inner node (level in [2, Levels-1]) to its index
// in the device Tree region.
func (g Geometry) FlatIndex(level int, idx uint64) uint64 {
	if level < 2 || level > g.Levels-1 {
		panic(fmt.Sprintf("bmt: level %d has no Tree-region storage", level))
	}
	return g.levelOffset[level] + idx
}

// Unflatten inverts FlatIndex, recovering the (level, index) of an
// inner node from its Tree-region position.
func (g Geometry) Unflatten(flat uint64) (level int, idx uint64) {
	for l := 2; l <= g.Levels-1; l++ {
		next := g.levelOffset[l] + capacityAt(l)
		if flat < next {
			return l, flat - g.levelOffset[l]
		}
	}
	panic(fmt.Sprintf("bmt: flat index %d beyond tree storage", flat))
}

// ChildDigest extracts the slot-th child digest from node content.
func ChildDigest(node []byte, slot int) uint64 {
	return binary.LittleEndian.Uint64(node[slot*cme.MACSize:])
}

// SetChildDigest stores a child digest into node content.
func SetChildDigest(node []byte, slot int, digest uint64) {
	binary.LittleEndian.PutUint64(node[slot*cme.MACSize:], digest)
}

// Hash computes the position-bound digest of a node's content. Tree
// digests bind the level only: two equal subtrees at the same level
// hash equally (which the sparse zero-digest optimization requires);
// relocating unequal nodes is still detected through the parent's
// content mismatch, and data-block splicing is covered by the
// address-bound data HMACs.
func Hash(e *cme.Engine, level int, content []byte) uint64 {
	return e.NodeHash(level, 0, content)
}

// ZeroDigests returns the digest of an all-zero subtree rooted at each
// level, indexed by level (entry 0 unused). zero[Levels] is the digest
// of a zeroed counter block; zero[l] is the digest of a node whose
// eight children are all-zero subtrees at level l+1.
func ZeroDigests(e *cme.Engine, g Geometry) []uint64 {
	zero := make([]uint64, g.Levels+1)
	var leaf [scm.BlockSize]byte
	zero[g.Levels] = Hash(e, g.Levels, leaf[:])
	var node [NodeSize]byte
	for l := g.Levels - 1; l >= 1; l-- {
		for slot := 0; slot < Arity; slot++ {
			SetChildDigest(node[:], slot, zero[l+1])
		}
		zero[l] = Hash(e, l, node[:])
	}
	return zero
}

// ZeroNode returns the content of an all-zero-children node at the
// given inner level (children are zero subtrees at level+1).
func ZeroNode(e *cme.Engine, g Geometry, level int) [NodeSize]byte {
	zero := ZeroDigests(e, g)
	var node [NodeSize]byte
	for slot := 0; slot < Arity; slot++ {
		SetChildDigest(node[:], slot, zero[level+1])
	}
	return node
}

// RebuildResult reports a (sub)tree recomputation.
type RebuildResult struct {
	// Content is the recomputed content of the rebuild root node.
	Content [NodeSize]byte
	// Digest is Hash(level, Content).
	Digest uint64
	// CounterReads counts occupied counter blocks fetched.
	CounterReads uint64
	// NodeWrites counts inner nodes written back to the Tree region.
	NodeWrites uint64
	// Cycles is the device time consumed (when persisting).
	Cycles uint64
}

// RebuildAbove recomputes tree levels [2, boundary) from the nodes
// persisted at the boundary level, as Triad-NVM-style recovery does:
// when the bottom of the tree is write-through, only the levels above
// the persisted boundary are stale, and they derive from the boundary
// nodes without touching the (much larger) counter level. Recomputed
// nodes are written back when persist is set; the result carries the
// level-1 content for comparison against the root register.
func RebuildAbove(dev *scm.Device, e *cme.Engine, g Geometry, boundary int, persist bool) RebuildResult {
	var res RebuildResult
	zero := ZeroDigests(e, g)
	if boundary <= 2 {
		// Nothing above the boundary is stored off-chip; the root
		// register itself is the only level-1 state.
		res.Digest = zero[1]
		return res
	}
	if boundary > g.Levels {
		boundary = g.Levels
	}
	// Digests of occupied boundary nodes, from the device.
	curr := make(map[uint64]uint64)
	var buf [scm.BlockSize]byte
	if boundary == g.Levels {
		for _, li := range dev.Indices(scm.Counter) {
			res.Cycles += dev.Read(scm.Counter, li, buf[:])
			res.CounterReads++
			curr[li] = Hash(e, g.Levels, buf[:])
		}
	} else {
		lo := g.FlatIndex(boundary, 0)
		hi := lo + capacityAt(boundary)
		for _, flat := range dev.Indices(scm.Tree) {
			if flat < lo || flat >= hi {
				continue
			}
			res.Cycles += dev.Read(scm.Tree, flat, buf[:])
			res.CounterReads++ // boundary-node reads; see report fields
			curr[flat-lo] = Hash(e, boundary, buf[:])
		}
	}
	level := boundary
	for level > 1 {
		next := make(map[uint64][NodeSize]byte)
		for idx := range curr {
			parent := idx >> arityShift
			node, ok := next[parent]
			if !ok {
				for slot := 0; slot < Arity; slot++ {
					SetChildDigest(node[:], slot, zero[level])
				}
			}
			SetChildDigest(node[:], ChildSlot(idx), curr[idx])
			next[parent] = node
		}
		level--
		curr = make(map[uint64]uint64, len(next))
		for idx, node := range next {
			curr[idx] = Hash(e, level, node[:])
			if persist && level >= 2 && level <= g.Levels-1 {
				res.Cycles += dev.Write(scm.Tree, g.FlatIndex(level, idx), node[:])
				res.NodeWrites++
			}
			if level == 1 && idx == 0 {
				res.Content = node
			}
		}
	}
	if d, ok := curr[0]; ok {
		res.Digest = d
	} else {
		res.Digest = zero[1]
		var node [NodeSize]byte
		for slot := 0; slot < Arity; slot++ {
			SetChildDigest(node[:], slot, zero[2])
		}
		res.Content = node
	}
	return res
}

// Rebuild recomputes the subtree rooted at (rootLevel, rootIdx) from
// the counter blocks currently stored in the device, exactly as
// recovery does after a crash under a lazy persistence scheme. If
// persist is true, every recomputed inner node (levels 2..Levels-1
// within the subtree) is written back to the Tree region.
//
// Only occupied counter blocks are read; absent subtrees contribute
// precomputed zero digests. The caller compares Result.Digest (or
// Content) against its trusted register.
func Rebuild(dev *scm.Device, e *cme.Engine, g Geometry, rootLevel int, rootIdx uint64, persist bool) RebuildResult {
	var res RebuildResult
	zero := ZeroDigests(e, g)
	lo, hi := g.LeafSpan(rootLevel, rootIdx)

	// Digests at the current level, keyed by node index. Start from
	// occupied leaves within the subtree's span.
	curr := make(map[uint64]uint64)
	var buf [scm.BlockSize]byte
	leaves := dev.Indices(scm.Counter)
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	for _, li := range leaves {
		if li < lo || li >= hi {
			continue
		}
		res.Cycles += dev.Read(scm.Counter, li, buf[:])
		res.CounterReads++
		curr[li] = Hash(e, g.Levels, buf[:])
	}

	level := g.Levels
	for level > rootLevel {
		next := make(map[uint64][NodeSize]byte)
		for idx := range curr {
			parent := idx >> arityShift
			node, ok := next[parent]
			if !ok {
				for slot := 0; slot < Arity; slot++ {
					SetChildDigest(node[:], slot, zero[level])
				}
			}
			SetChildDigest(node[:], ChildSlot(idx), curr[idx])
			next[parent] = node
		}
		level--
		curr = make(map[uint64]uint64, len(next))
		for idx, node := range next {
			curr[idx] = Hash(e, level, node[:])
			if persist && level >= 2 && level <= g.Levels-1 {
				res.Cycles += dev.Write(scm.Tree, g.FlatIndex(level, idx), node[:])
				res.NodeWrites++
			}
			if level == rootLevel && idx == rootIdx {
				res.Content = node
			}
		}
	}

	if d, ok := curr[rootIdx]; ok {
		res.Digest = d
	} else {
		// The subtree is entirely unoccupied: its root is the zero
		// node for this level.
		res.Digest = zero[rootLevel]
		if rootLevel < g.Levels {
			var node [NodeSize]byte
			for slot := 0; slot < Arity; slot++ {
				SetChildDigest(node[:], slot, zero[rootLevel+1])
			}
			res.Content = node
		}
	}
	return res
}
