// Package bmt implements the Bonsai Merkle Tree: an 8-ary general BMT
// (inner nodes are the concatenated keyed digests of their eight
// children) whose leaves are the split-counter blocks of counter-mode
// encryption.
//
// Level numbering follows the paper: the root is level 1 and level k
// holds 8^(k-1) nodes, so a subtree root "at level 3" is one of 64
// nodes, each covering 1/64th of physical memory (Table 4's 1.56%
// stale fraction). The leaf level holds the counter blocks themselves;
// they are stored in the device's Counter region, while inner levels
// 2..L-1 live in the Tree region. The level-1 node (the root content)
// is never stored in untrusted memory — it lives in an on-chip
// register owned by the memory controller.
//
// The simulated device is sparse, so the package precomputes the
// digest of an all-zero subtree at every level ("zero digests"); an
// absent child contributes its level's zero digest, making tree
// construction and recovery O(occupied footprint) instead of
// O(memory size).
//
// Rebuilds run on a flat, index-sorted pipeline (no per-level maps)
// and can optionally shard the leaf span across a bounded worker pool
// (RebuildOptions.Workers): each chunk's subtree is reconstructed
// independently below a fan-in level and the chunk roots are merged
// serially above it. Because every RebuildResult field is either pure
// tree math (Digest, Content) or a sum of fixed per-access constants
// (Cycles, CounterReads, NodeWrites), the parallel result is
// bit-identical to the serial one at any worker count.
package bmt

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"amnt/internal/cme"
	"amnt/internal/scm"
)

// Arity is the tree fan-out.
const Arity = 8

// arityShift is log2(Arity).
const arityShift = 3

// NodeSize is the byte size of a tree node (Arity children × 8-byte
// digests), equal to one device block.
const NodeSize = Arity * cme.MACSize

// Geometry captures the shape of the tree over a given number of
// counter-block leaves.
type Geometry struct {
	// Leaves is the number of counter blocks covered (capacity/4 KB).
	Leaves uint64
	// Levels is the total number of levels including the leaf level;
	// the root is level 1, leaves are level Levels.
	Levels int
	// levelOffset[l] is the flat Tree-region offset of level l's first
	// node, defined for inner levels 2..Levels-1.
	levelOffset []uint64
}

// NewGeometry builds the geometry for the given leaf count. It panics
// if leaves is zero (an empty tree has no meaningful root).
func NewGeometry(leaves uint64) Geometry {
	if leaves == 0 {
		panic("bmt: geometry requires at least one leaf")
	}
	levels := 1
	for capacity := uint64(1); capacity < leaves; capacity <<= arityShift {
		levels++
	}
	if levels < 2 {
		levels = 2 // always keep a distinct root above the leaves
	}
	g := Geometry{Leaves: leaves, Levels: levels}
	g.levelOffset = make([]uint64, levels+1)
	off := uint64(0)
	for l := 2; l <= levels-1; l++ {
		g.levelOffset[l] = off
		off += capacityAt(l)
	}
	return g
}

// GeometryForCapacity builds the geometry for a data capacity in
// bytes (one leaf per 4 KB page).
func GeometryForCapacity(capacityBytes uint64) Geometry {
	leaves := capacityBytes / 4096
	if leaves == 0 {
		leaves = 1
	}
	return NewGeometry(leaves)
}

// capacityAt returns the theoretical node count of a level: 8^(l-1).
func capacityAt(level int) uint64 { return 1 << (arityShift * (level - 1)) }

// NodesAt returns the number of occupied node slots at a level —
// ceil(Leaves / 8^(Levels-level)) — i.e. how many nodes have at least
// one real leaf underneath them.
func (g Geometry) NodesAt(level int) uint64 {
	if level < 1 || level > g.Levels {
		panic(fmt.Sprintf("bmt: level %d out of range [1,%d]", level, g.Levels))
	}
	shift := uint(arityShift * (g.Levels - level))
	return (g.Leaves + (1 << shift) - 1) >> shift
}

// Ancestor returns the index at the given level of the ancestor of
// leaf leafIdx.
func (g Geometry) Ancestor(level int, leafIdx uint64) uint64 {
	return leafIdx >> uint(arityShift*(g.Levels-level))
}

// LeafSpan returns the half-open range [lo, hi) of leaf indices
// covered by node (level, idx).
func (g Geometry) LeafSpan(level int, idx uint64) (lo, hi uint64) {
	shift := uint(arityShift * (g.Levels - level))
	return idx << shift, (idx + 1) << shift
}

// CoverageBytes returns how many bytes of data one node at the given
// level protects (LeafSpan size × 4 KB), clamped to the real capacity.
func (g Geometry) CoverageBytes(level int) uint64 {
	lo, hi := g.LeafSpan(level, 0)
	span := hi - lo
	if span > g.Leaves {
		span = g.Leaves
	}
	return span * 4096
}

// Parent returns the (level, index) of a node's parent.
func Parent(level int, idx uint64) (int, uint64) { return level - 1, idx >> arityShift }

// ChildSlot returns a node's slot (0..7) within its parent.
func ChildSlot(idx uint64) int { return int(idx & (Arity - 1)) }

// Child returns the (level, index) of the slot-th child of node
// (level, idx).
func Child(level int, idx uint64, slot int) (int, uint64) {
	return level + 1, idx<<arityShift | uint64(slot)
}

// FlatIndex maps an inner node (level in [2, Levels-1]) to its index
// in the device Tree region.
func (g Geometry) FlatIndex(level int, idx uint64) uint64 {
	if level < 2 || level > g.Levels-1 {
		panic(fmt.Sprintf("bmt: level %d has no Tree-region storage", level))
	}
	return g.levelOffset[level] + idx
}

// Unflatten inverts FlatIndex, recovering the (level, index) of an
// inner node from its Tree-region position.
func (g Geometry) Unflatten(flat uint64) (level int, idx uint64) {
	for l := 2; l <= g.Levels-1; l++ {
		next := g.levelOffset[l] + capacityAt(l)
		if flat < next {
			return l, flat - g.levelOffset[l]
		}
	}
	panic(fmt.Sprintf("bmt: flat index %d beyond tree storage", flat))
}

// ChildDigest extracts the slot-th child digest from node content.
func ChildDigest(node []byte, slot int) uint64 {
	return binary.LittleEndian.Uint64(node[slot*cme.MACSize:])
}

// SetChildDigest stores a child digest into node content.
func SetChildDigest(node []byte, slot int, digest uint64) {
	binary.LittleEndian.PutUint64(node[slot*cme.MACSize:], digest)
}

// Hash computes the position-bound digest of a node's content. Tree
// digests bind the level only: two equal subtrees at the same level
// hash equally (which the sparse zero-digest optimization requires);
// relocating unequal nodes is still detected through the parent's
// content mismatch, and data-block splicing is covered by the
// address-bound data HMACs.
func Hash(e *cme.Engine, level int, content []byte) uint64 {
	return e.NodeHash(level, 0, content)
}

// zeroKey identifies one zero-digest table: the hash backend, the
// device key, and the tree depth fully determine every entry (zero
// digests do not depend on the leaf count, only on Levels).
type zeroKey struct {
	hasher string
	key    uint64
	levels int
}

// zeroCache memoizes zero-digest tables across rebuilds and
// controllers. Values are []uint64 slices shared by all callers.
var zeroCache sync.Map

// ZeroDigests returns the digest of an all-zero subtree rooted at each
// level, indexed by level (entry 0 unused). zero[Levels] is the digest
// of a zeroed counter block; zero[l] is the digest of a node whose
// eight children are all-zero subtrees at level l+1.
//
// The returned slice is cached and shared between callers (rebuilds
// run it on every invocation, so recomputing it per call would
// dominate small recoveries): treat it as read-only.
func ZeroDigests(e *cme.Engine, g Geometry) []uint64 {
	k := zeroKey{hasher: e.Hasher().Name(), key: e.Key(), levels: g.Levels}
	if v, ok := zeroCache.Load(k); ok {
		return v.([]uint64)
	}
	zero := make([]uint64, g.Levels+1)
	var leaf [scm.BlockSize]byte
	zero[g.Levels] = Hash(e, g.Levels, leaf[:])
	var node [NodeSize]byte
	for l := g.Levels - 1; l >= 1; l-- {
		for slot := 0; slot < Arity; slot++ {
			SetChildDigest(node[:], slot, zero[l+1])
		}
		zero[l] = Hash(e, l, node[:])
	}
	v, _ := zeroCache.LoadOrStore(k, zero)
	return v.([]uint64)
}

// ZeroNode returns the content of an all-zero-children node at the
// given inner level (children are zero subtrees at level+1).
func ZeroNode(e *cme.Engine, g Geometry, level int) [NodeSize]byte {
	zero := ZeroDigests(e, g)
	var node [NodeSize]byte
	for slot := 0; slot < Arity; slot++ {
		SetChildDigest(node[:], slot, zero[level+1])
	}
	return node
}

// RebuildResult reports a (sub)tree recomputation.
type RebuildResult struct {
	// Content is the recomputed content of the rebuild root node.
	Content [NodeSize]byte
	// Digest is Hash(level, Content).
	Digest uint64
	// CounterReads counts occupied counter blocks fetched.
	CounterReads uint64
	// NodeWrites counts inner nodes written back to the Tree region.
	NodeWrites uint64
	// Cycles is the device time consumed (when persisting).
	Cycles uint64
}

// RebuildOptions selects how a rebuild runs. The zero value is a
// serial, non-persisting rebuild.
type RebuildOptions struct {
	// Persist writes every recomputed inner node (levels 2..Levels-1)
	// back to the device Tree region.
	Persist bool
	// Workers bounds the rebuild worker pool; 0 or 1 runs serially.
	// Any value yields a bit-identical RebuildResult and identical
	// device statistics — only wall-clock time changes.
	Workers int
	// Progress, when non-nil, receives a live leaves-rehashed
	// watermark as the rebuild runs (read concurrently by telemetry;
	// never affects the result).
	Progress *Progress
}

// parallelMinSource is the minimum number of occupied source nodes
// below which a parallel rebuild falls back to the serial path. Kept
// tiny so the pool engages (and stays testable) on small trees; the
// pool's fixed cost is negligible against even one device access.
const parallelMinSource = 2

// source describes where a rebuild's bottom level lives on the
// device: tree level, device region, and the region offset of the
// level's node 0 (non-zero only for Tree-region boundary levels).
type source struct {
	level   int
	region  scm.Region
	flatOff uint64
}

// Rebuild recomputes the subtree rooted at (rootLevel, rootIdx) from
// the counter blocks currently stored in the device, exactly as
// recovery does after a crash under a lazy persistence scheme. If
// persist is true, every recomputed inner node (levels 2..Levels-1
// within the subtree) is written back to the Tree region.
//
// Only occupied counter blocks are read; absent subtrees contribute
// precomputed zero digests. The caller compares Result.Digest (or
// Content) against its trusted register.
func Rebuild(dev *scm.Device, e *cme.Engine, g Geometry, rootLevel int, rootIdx uint64, persist bool) RebuildResult {
	return RebuildWith(dev, e, g, rootLevel, rootIdx, RebuildOptions{Persist: persist})
}

// RebuildWith is Rebuild with explicit options (parallelism).
func RebuildWith(dev *scm.Device, e *cme.Engine, g Geometry, rootLevel int, rootIdx uint64, opts RebuildOptions) RebuildResult {
	lo, hi := g.LeafSpan(rootLevel, rootIdx)
	idxs := dev.Indices(scm.Counter)
	n := 0
	for _, li := range idxs {
		if li >= lo && li < hi {
			idxs[n] = li
			n++
		}
	}
	idxs = idxs[:n]
	slices.Sort(idxs)
	return rebuildFrom(dev, e, g, source{level: g.Levels, region: scm.Counter}, idxs, rootLevel, rootIdx, opts)
}

// RebuildAbove recomputes tree levels [2, boundary) from the nodes
// persisted at the boundary level, as Triad-NVM-style recovery does:
// when the bottom of the tree is write-through, only the levels above
// the persisted boundary are stale, and they derive from the boundary
// nodes without touching the (much larger) counter level. Recomputed
// nodes are written back when persist is set; the result carries the
// level-1 content for comparison against the root register.
func RebuildAbove(dev *scm.Device, e *cme.Engine, g Geometry, boundary int, persist bool) RebuildResult {
	return RebuildAboveWith(dev, e, g, boundary, RebuildOptions{Persist: persist})
}

// RebuildAboveWith is RebuildAbove with explicit options
// (parallelism).
func RebuildAboveWith(dev *scm.Device, e *cme.Engine, g Geometry, boundary int, opts RebuildOptions) RebuildResult {
	if boundary <= 2 {
		// Nothing above the boundary is stored off-chip; the root
		// register itself is the only level-1 state.
		return RebuildResult{Digest: ZeroDigests(e, g)[1]}
	}
	if boundary > g.Levels {
		boundary = g.Levels
	}
	var src source
	var idxs []uint64
	if boundary == g.Levels {
		src = source{level: boundary, region: scm.Counter}
		idxs = dev.Indices(scm.Counter)
	} else {
		off := g.FlatIndex(boundary, 0)
		end := off + capacityAt(boundary)
		src = source{level: boundary, region: scm.Tree, flatOff: off}
		flats := dev.Indices(scm.Tree)
		for _, flat := range flats {
			if flat >= off && flat < end {
				idxs = append(idxs, flat-off)
			}
		}
	}
	slices.Sort(idxs)
	return rebuildFrom(dev, e, g, src, idxs, 1, 0, opts)
}

// rebuildFrom reconstructs levels [rootLevel, src.level] from the
// sorted occupied source-node indices idxs, dispatching to the
// parallel engine when the options ask for it.
func rebuildFrom(dev *scm.Device, e *cme.Engine, g Geometry, src source, idxs []uint64, rootLevel int, rootIdx uint64, opts RebuildOptions) RebuildResult {
	zero := ZeroDigests(e, g)
	opts.Progress.begin(uint64(len(idxs)))
	defer opts.Progress.end()
	if opts.Workers > 1 && src.level > rootLevel && len(idxs) >= parallelMinSource {
		return rebuildParallel(dev, e, g, zero, src, idxs, rootLevel, rootIdx, opts)
	}

	var res RebuildResult
	digs := make([]uint64, len(idxs))
	var buf [scm.BlockSize]byte
	for i, idx := range idxs {
		res.Cycles += dev.Read(src.region, src.flatOff+idx, buf[:])
		res.CounterReads++
		digs[i] = Hash(e, src.level, buf[:])
		opts.Progress.add(1)
	}
	idxs, digs = climb(e, g, zero, src.level, rootLevel, idxs, digs,
		persistEmitter(dev, g, rootLevel, rootIdx, opts.Persist, &res))
	finish(zero, g, rootLevel, idxs, digs, rootIdx, &res)
	return res
}

// persistEmitter returns the node sink of the serial (and merge)
// climb: write recomputed inner nodes through when persisting, and
// capture the rebuild root's content.
func persistEmitter(dev *scm.Device, g Geometry, rootLevel int, rootIdx uint64, persist bool, res *RebuildResult) func(level int, idx uint64, node *[NodeSize]byte) {
	return func(level int, idx uint64, node *[NodeSize]byte) {
		if persist && level >= 2 && level <= g.Levels-1 {
			res.Cycles += dev.Write(scm.Tree, g.FlatIndex(level, idx), node[:])
			res.NodeWrites++
		}
		if level == rootLevel && idx == rootIdx {
			res.Content = *node
		}
	}
}

// climb folds index-sorted (idx, digest) pairs at level from upward
// to level to, one level at a time: consecutive runs sharing a parent
// are gathered into a node buffer seeded with the child level's zero
// digest, hashed, and emitted. Output pairs stay sorted, so the two
// scratch slices ping-pong across levels and the whole climb performs
// a constant number of allocations. emit sees every computed node
// (levels to..from-1).
func climb(e *cme.Engine, g Geometry, zero []uint64, from, to int, idxs, digs []uint64, emit func(level int, idx uint64, node *[NodeSize]byte)) ([]uint64, []uint64) {
	if from <= to || len(idxs) == 0 {
		return idxs, digs
	}
	var node [NodeSize]byte
	nIdx := make([]uint64, 0, (len(idxs)+Arity-1)/Arity)
	nDig := make([]uint64, 0, cap(nIdx))
	for level := from; level > to; level-- {
		nIdx, nDig = nIdx[:0], nDig[:0]
		for i := 0; i < len(idxs); {
			parent := idxs[i] >> arityShift
			for slot := 0; slot < Arity; slot++ {
				SetChildDigest(node[:], slot, zero[level])
			}
			for ; i < len(idxs) && idxs[i]>>arityShift == parent; i++ {
				SetChildDigest(node[:], ChildSlot(idxs[i]), digs[i])
			}
			nIdx = append(nIdx, parent)
			nDig = append(nDig, Hash(e, level-1, node[:]))
			emit(level-1, parent, &node)
		}
		idxs, digs, nIdx, nDig = nIdx, nDig, idxs, digs
	}
	return idxs, digs
}

// finish resolves the rebuild root digest from the climbed pairs, or
// synthesizes the zero-subtree result when the span was unoccupied.
func finish(zero []uint64, g Geometry, rootLevel int, idxs, digs []uint64, rootIdx uint64, res *RebuildResult) {
	for i, idx := range idxs {
		if idx == rootIdx {
			res.Digest = digs[i]
			return
		}
	}
	// The subtree is entirely unoccupied: its root is the zero node
	// for this level.
	res.Digest = zero[rootLevel]
	if rootLevel < g.Levels {
		var node [NodeSize]byte
		for slot := 0; slot < Arity; slot++ {
			SetChildDigest(node[:], slot, zero[rootLevel+1])
		}
		res.Content = node
	}
}

// pendingNode is one inner node a chunk worker computed, buffered for
// the serial apply phase (device writes stay single-threaded).
type pendingNode struct {
	level int
	idx   uint64
	node  [NodeSize]byte
}

// chunkOut is one chunk's contribution: the digest of its fan-in node
// and the inner nodes to persist beneath it.
type chunkOut struct {
	digest uint64
	pend   []pendingNode
}

// fanInLevel picks the level whose nodes partition the rebuild into
// chunks: the shallowest level below rootLevel with at least
// 4×workers potential chunks (oversubscription smooths uneven
// occupancy), clamped to the source level.
func fanInLevel(rootLevel, srcLevel, workers int) int {
	b := rootLevel
	chunks := 1
	for b < srcLevel && chunks < 4*workers {
		b++
		chunks *= Arity
	}
	return b
}

// rebuildParallel shards the sorted source span by fan-in ancestor,
// rebuilds each chunk's subtree on a bounded worker pool, then
// serially applies the buffered node writes and merges the chunk
// roots up to the rebuild root.
//
// Workers touch the device only through scm.PeekInto (read-only, no
// statistics), which is safe to call concurrently while nothing
// mutates the device; all writes and statistics happen on the calling
// goroutine afterwards, via scm.AccountReads and ordinary Writes, so
// device counters and the RebuildResult match the serial path bit for
// bit.
func rebuildParallel(dev *scm.Device, e *cme.Engine, g Geometry, zero []uint64, src source, idxs []uint64, rootLevel int, rootIdx uint64, opts RebuildOptions) RebuildResult {
	fanIn := fanInLevel(rootLevel, src.level, opts.Workers)
	shift := uint(arityShift * (src.level - fanIn))

	// Partition the sorted span into per-chunk subslices: one task per
	// occupied fan-in ancestor.
	type chunkTask struct {
		fanIdx uint64
		idxs   []uint64
	}
	var tasks []chunkTask
	for i := 0; i < len(idxs); {
		fanIdx := idxs[i] >> shift
		j := i + 1
		for j < len(idxs) && idxs[j]>>shift == fanIdx {
			j++
		}
		tasks = append(tasks, chunkTask{fanIdx: fanIdx, idxs: idxs[i:j]})
		i = j
	}

	outs := make([]chunkOut, len(tasks))
	workers := opts.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var nextTask atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf [scm.BlockSize]byte
			for {
				t := int(nextTask.Add(1) - 1)
				if t >= len(tasks) {
					return
				}
				task := tasks[t]
				cIdxs := slices.Clone(task.idxs)
				cDigs := make([]uint64, len(cIdxs))
				for i, idx := range cIdxs {
					dev.PeekInto(src.region, src.flatOff+idx, buf[:])
					cDigs[i] = Hash(e, src.level, buf[:])
				}
				opts.Progress.add(uint64(len(cIdxs)))
				out := &outs[t]
				_, cDigs = climb(e, g, zero, src.level, fanIn, cIdxs, cDigs,
					func(level int, idx uint64, node *[NodeSize]byte) {
						if opts.Persist && level >= 2 && level <= g.Levels-1 {
							out.pend = append(out.pend, pendingNode{level: level, idx: idx, node: *node})
						}
					})
				out.digest = cDigs[0] // the chunk folds to a single fan-in pair
			}
		}()
	}
	wg.Wait()

	// Serial epilogue: account the reads the workers performed, apply
	// their buffered node writes in chunk order, then merge the chunk
	// roots up to the rebuild root.
	var res RebuildResult
	res.CounterReads = uint64(len(idxs))
	res.Cycles += dev.AccountReads(src.region, uint64(len(idxs)))
	emit := persistEmitter(dev, g, rootLevel, rootIdx, opts.Persist, &res)
	mIdx := make([]uint64, len(tasks))
	mDig := make([]uint64, len(tasks))
	for t := range tasks {
		for i := range outs[t].pend {
			p := &outs[t].pend[i]
			res.Cycles += dev.Write(scm.Tree, g.FlatIndex(p.level, p.idx), p.node[:])
			res.NodeWrites++
		}
		mIdx[t] = tasks[t].fanIdx
		mDig[t] = outs[t].digest
	}
	mIdx, mDig = climb(e, g, zero, fanIn, rootLevel, mIdx, mDig, emit)
	finish(zero, g, rootLevel, mIdx, mDig, rootIdx, &res)
	return res
}
