package bmt

import (
	"fmt"
	"math/rand"
	"testing"

	"amnt/internal/scm"
)

// stepSizes are the chunk widths the resumable-equivalence tests
// sweep: single-leaf, odd, typical, and everything-at-once.
var stepSizes = []int{1, 3, 64, 10000}

// TestRebuilderMatchesSerial pins the resumable front's contract:
// driving the Rebuilder in chunks of any size yields a RebuildResult,
// device statistics, and persisted tree bytes bit-identical to one
// serial RebuildWith over the same span.
func TestRebuilderMatchesSerial(t *testing.T) {
	shapes := map[string][]uint64{
		"dense-prefix": {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		"sparse":       {0, 511, 1023, 2047, 4095},
		"single":       {1234},
		"empty":        {},
	}
	const leaves = 1 << 12
	g := NewGeometry(leaves)
	e := eng()
	for name, occ := range shapes {
		for _, persist := range []bool{false, true} {
			ds := dev(leaves * 4096)
			populate(ds, occ)
			serial := RebuildWith(ds, e, g, 1, 0, RebuildOptions{Persist: persist})
			wantStats := snapshotStats(ds)
			for _, step := range stepSizes {
				dp := dev(leaves * 4096)
				populate(dp, occ)
				r := NewRebuilder(dp, e, g, 1, 0, RebuildOptions{Persist: persist}, nil)
				steps := 0
				for !r.Step(step) {
					steps++
					if steps > leaves+2 {
						t.Fatalf("%s step=%d: rebuild did not terminate", name, step)
					}
				}
				if !r.Done() {
					t.Fatalf("%s step=%d: Step returned true but Done is false", name, step)
				}
				if got := r.Result(); got != serial {
					t.Fatalf("%s persist=%v step=%d: %+v != serial %+v", name, persist, step, got, serial)
				}
				if got := snapshotStats(dp); got != wantStats {
					t.Fatalf("%s persist=%v step=%d: device stats %+v != serial %+v", name, persist, step, got, wantStats)
				}
				for _, flat := range dp.Indices(scm.Tree) {
					if string(dp.Peek(scm.Tree, flat)) != string(ds.Peek(scm.Tree, flat)) {
						t.Fatalf("%s step=%d: tree node %d bytes differ", name, step, flat)
					}
				}
				if len(dp.Indices(scm.Tree)) != len(ds.Indices(scm.Tree)) {
					t.Fatalf("%s step=%d: tree footprint differs", name, step)
				}
			}
		}
	}
}

// TestRebuilderSubtreeProperty randomizes occupancy, subtree roots,
// and chunk sizes: the resumable result must match serial RebuildWith
// everywhere, including subtree rebuilds (the AMNT recovery root).
func TestRebuilderSubtreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED))
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for round := 0; round < rounds; round++ {
		leaves := uint64(1) << (6 + rng.Intn(7))
		g := NewGeometry(leaves)
		e := eng()
		occ := make([]uint64, 1+rng.Intn(200))
		for i := range occ {
			occ[i] = rng.Uint64() % leaves
		}
		rootLevel, rootIdx := 1, uint64(0)
		if rng.Intn(2) == 0 && g.Levels > 2 {
			rootLevel = 2 + rng.Intn(g.Levels-2)
			rootIdx = rng.Uint64() % capacityAt(rootLevel)
		}
		persist := rng.Intn(2) == 0
		step := 1 + rng.Intn(40)

		ds := dev(leaves * 4096)
		populate(ds, occ)
		serial := RebuildWith(ds, e, g, rootLevel, rootIdx, RebuildOptions{Persist: persist})
		wantStats := snapshotStats(ds)

		dp := dev(leaves * 4096)
		populate(dp, occ)
		r := NewRebuilder(dp, e, g, rootLevel, rootIdx, RebuildOptions{Persist: persist}, nil)
		for !r.Step(step) {
		}
		ctx := fmt.Sprintf("round %d leaves=%d occ=%d root=(%d,%d) persist=%v step=%d",
			round, leaves, len(occ), rootLevel, rootIdx, persist, step)
		if got := r.Result(); got != serial {
			t.Fatalf("%s: %+v != serial %+v", ctx, got, serial)
		}
		if got := snapshotStats(dp); got != wantStats {
			t.Fatalf("%s: device stats %+v != serial %+v", ctx, got, wantStats)
		}
	}
}

// TestRebuilderFrozenOverrides pins the degraded-serving semantics:
// a non-nil override hashes the frozen bytes instead of the (since
// rewritten) device block, and a nil override excludes a leaf that
// was first-touched after the freeze — so the resumable rebuild over
// the live device equals a serial rebuild over the crash image.
func TestRebuilderFrozenOverrides(t *testing.T) {
	const leaves = 1 << 9
	g := NewGeometry(leaves)
	e := eng()

	// The crash image: leaves 3, 17, 200 with index-derived contents.
	crashOcc := []uint64{3, 17, 200}
	dImage := dev(leaves * 4096)
	populate(dImage, crashOcc)
	want := RebuildWith(dImage, e, g, 1, 0, RebuildOptions{Persist: true})

	// The live device: leaf 17 was overwritten after the freeze and
	// leaf 42 was first-touched; both must be masked by the overrides.
	dLive := dev(leaves * 4096)
	populate(dLive, crashOcc)
	frozen := map[uint64][]byte{
		17: dLive.SnapshotBlock(scm.Counter, 17),
		42: nil,
	}
	var scribble [scm.BlockSize]byte
	for i := range scribble {
		scribble[i] = 0xEE
	}
	dLive.Write(scm.Counter, 17, scribble[:])
	dLive.Write(scm.Counter, 42, scribble[:])

	r := NewRebuilder(dLive, e, g, 1, 0, RebuildOptions{Persist: true}, frozen)
	for !r.Step(2) {
	}
	got := r.Result()
	if got.Digest != want.Digest || got.Content != want.Content {
		t.Fatalf("frozen rebuild root %x != crash-image root %x", got.Digest, want.Digest)
	}
	if got.CounterReads != want.CounterReads {
		t.Fatalf("frozen rebuild read %d leaves, crash image has %d", got.CounterReads, want.CounterReads)
	}
}

// TestRebuilderProgress checks the watermark bracket: begin at
// construction, done advancing with Step, end exactly once at
// completion (or Abort).
func TestRebuilderProgress(t *testing.T) {
	const leaves = 256
	g := NewGeometry(leaves)
	e := eng()
	d := dev(leaves * 4096)
	populate(d, []uint64{1, 2, 3, 4, 5})

	var p Progress
	p.Reset()
	r := NewRebuilder(d, e, g, 1, 0, RebuildOptions{Progress: &p}, nil)
	if s := p.Snapshot(); s.Total != 5 || !s.Active {
		t.Fatalf("after construction: %+v", s)
	}
	r.Step(2)
	if s := p.Snapshot(); s.Done != 2 {
		t.Fatalf("after Step(2): done=%d", s.Done)
	}
	for !r.Step(2) {
	}
	if s := p.Snapshot(); s.Done != 5 || s.Active {
		t.Fatalf("after completion: %+v", s)
	}
	r.Abort() // no-op after completion
	if s := p.Snapshot(); s.Active {
		t.Fatal("Abort after completion reopened the bracket")
	}

	p.Reset()
	r2 := NewRebuilder(d, e, g, 1, 0, RebuildOptions{Progress: &p}, nil)
	r2.Step(1)
	r2.Abort()
	if s := p.Snapshot(); s.Active {
		t.Fatal("Abort did not close the bracket")
	}
}
