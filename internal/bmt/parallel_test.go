package bmt

import (
	"fmt"
	"math/rand"
	"testing"

	"amnt/internal/cme"
	"amnt/internal/scm"
)

func cmeEngineWithKey(key uint64) *cme.Engine { return cme.NewEngine(cme.Fast{}, key) }

// workerCounts are the pool sizes every equivalence test sweeps.
var workerCounts = []int{1, 2, 4, 8}

// devStats snapshots the device counters a rebuild can touch.
type devStats struct {
	reads, writes, counterReads, treeReads, treeWrites uint64
}

func snapshotStats(d *scm.Device) devStats {
	st := d.Stats()
	return devStats{
		reads:        st.Reads.Value(),
		writes:       st.Writes.Value(),
		counterReads: st.RegionReads[scm.Counter].Value(),
		treeReads:    st.RegionReads[scm.Tree].Value(),
		treeWrites:   st.RegionWrites[scm.Tree].Value(),
	}
}

// populate writes the given counter indices with index-derived
// contents, so equal index sets produce equal devices.
func populate(d *scm.Device, idxs []uint64) {
	var blk [scm.BlockSize]byte
	for _, idx := range idxs {
		for i := range blk {
			blk[i] = byte(idx + uint64(i)*3)
		}
		blk[0] = byte(idx)
		blk[1] = byte(idx >> 8)
		d.Write(scm.Counter, idx, blk[:])
	}
}

// TestRebuildAboveDeterministic pins the satellite fix: RebuildAbove
// used to walk dev.Indices unsorted, so repeated runs over identical
// devices could write nodes in different orders. Every run over an
// identically-populated device must now return a bit-identical
// RebuildResult, for both Rebuild and RebuildAbove.
func TestRebuildAboveDeterministic(t *testing.T) {
	const leaves = 1 << 12
	g := NewGeometry(leaves)
	e := eng()
	rng := rand.New(rand.NewSource(42))
	idxs := make([]uint64, 0, 200)
	for i := 0; i < 200; i++ {
		idxs = append(idxs, rng.Uint64()%leaves)
	}
	run := func(boundary int) (RebuildResult, RebuildResult) {
		d := dev(leaves * 4096)
		populate(d, idxs)
		full := Rebuild(d, e, g, 1, 0, true)
		above := RebuildAbove(d, e, g, boundary, true)
		return full, above
	}
	for _, boundary := range []int{3, g.Levels} {
		firstFull, firstAbove := run(boundary)
		for i := 0; i < 5; i++ {
			full, above := run(boundary)
			if full != firstFull {
				t.Fatalf("Rebuild run %d diverged: %+v vs %+v", i, full, firstFull)
			}
			if above != firstAbove {
				t.Fatalf("RebuildAbove(boundary=%d) run %d diverged: %+v vs %+v",
					boundary, i, above, firstAbove)
			}
		}
	}
}

// TestRebuildAboveSortedMatchesFull cross-checks the sorted boundary
// walk: rebuilding above the leaf boundary must reproduce the full
// rebuild's root digest.
func TestRebuildAboveSortedMatchesFull(t *testing.T) {
	const leaves = 1 << 9
	g := NewGeometry(leaves)
	e := eng()
	d := dev(leaves * 4096)
	populate(d, []uint64{0, 3, 17, 63, 64, 200, 511})
	full := Rebuild(d, e, g, 1, 0, true)
	above := RebuildAbove(d, e, g, g.Levels, false)
	if above.Digest != full.Digest || above.Content != full.Content {
		t.Fatalf("RebuildAbove root %x != full rebuild root %x", above.Digest, full.Digest)
	}
}

// TestRebuildParallelMatchesSerial verifies the tentpole contract on
// fixed occupancy shapes: every worker count yields the serial
// RebuildResult bit for bit, and leaves the device with identical
// statistics and stored bytes.
func TestRebuildParallelMatchesSerial(t *testing.T) {
	shapes := map[string][]uint64{
		"dense-prefix": {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		"sparse":       {0, 511, 1023, 2047, 4095},
		"one-chunk":    {64, 65, 66, 67},
		"single":       {1234},
		"ends":         {0, 4095},
	}
	const leaves = 1 << 12
	g := NewGeometry(leaves)
	e := eng()
	for name, occ := range shapes {
		for _, persist := range []bool{false, true} {
			ds := dev(leaves * 4096)
			populate(ds, occ)
			serial := RebuildWith(ds, e, g, 1, 0, RebuildOptions{Persist: persist, Workers: 1})
			wantStats := snapshotStats(ds)
			for _, w := range workerCounts {
				dp := dev(leaves * 4096)
				populate(dp, occ)
				par := RebuildWith(dp, e, g, 1, 0, RebuildOptions{Persist: persist, Workers: w})
				if par != serial {
					t.Fatalf("%s persist=%v workers=%d: %+v != serial %+v", name, persist, w, par, serial)
				}
				if got := snapshotStats(dp); got != wantStats {
					t.Fatalf("%s persist=%v workers=%d: device stats %+v != serial %+v", name, persist, w, got, wantStats)
				}
				for _, flat := range dp.Indices(scm.Tree) {
					want := ds.Peek(scm.Tree, flat)
					got := dp.Peek(scm.Tree, flat)
					if string(want) != string(got) {
						t.Fatalf("%s workers=%d: tree node %d bytes differ", name, w, flat)
					}
				}
				if len(dp.Indices(scm.Tree)) != len(ds.Indices(scm.Tree)) {
					t.Fatalf("%s workers=%d: tree footprint differs", name, w)
				}
			}
		}
	}
}

// TestRebuildEquivalenceProperty is the randomized tentpole check,
// designed to run under -race: random occupancy patterns cut at
// random crash points must yield identical digests, contents, and
// cycle counts at every worker count — for whole-tree rebuilds,
// random subtree rebuilds, and boundary rebuilds at random levels.
func TestRebuildEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xAB5E))
	rounds := 24
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		leaves := uint64(1) << (6 + rng.Intn(7)) // 64 .. 4096 leaves
		g := NewGeometry(leaves)
		e := eng()

		// A random write sequence truncated at a random crash point:
		// the surviving prefix is the occupancy recovery sees.
		seq := make([]uint64, 1+rng.Intn(300))
		for i := range seq {
			seq[i] = rng.Uint64() % leaves
		}
		crash := rng.Intn(len(seq)) + 1
		occ := seq[:crash]

		rootLevel, rootIdx := 1, uint64(0)
		if rng.Intn(2) == 0 && g.Levels > 2 {
			rootLevel = 2 + rng.Intn(g.Levels-2)
			rootIdx = rng.Uint64() % capacityAt(rootLevel)
		}
		boundary := 2 + rng.Intn(g.Levels-1)
		persist := rng.Intn(2) == 0

		ds := dev(leaves * 4096)
		populate(ds, occ)
		serial := RebuildWith(ds, e, g, rootLevel, rootIdx, RebuildOptions{Persist: persist, Workers: 1})
		serialAbove := RebuildAboveWith(ds, e, g, boundary, RebuildOptions{Persist: persist, Workers: 1})
		wantStats := snapshotStats(ds)

		for _, w := range workerCounts[1:] {
			dp := dev(leaves * 4096)
			populate(dp, occ)
			par := RebuildWith(dp, e, g, rootLevel, rootIdx, RebuildOptions{Persist: persist, Workers: w})
			parAbove := RebuildAboveWith(dp, e, g, boundary, RebuildOptions{Persist: persist, Workers: w})
			ctx := fmt.Sprintf("round %d leaves=%d occ=%d root=(%d,%d) boundary=%d persist=%v workers=%d",
				round, leaves, len(occ), rootLevel, rootIdx, boundary, persist, w)
			if par != serial {
				t.Fatalf("%s: Rebuild %+v != serial %+v", ctx, par, serial)
			}
			if parAbove != serialAbove {
				t.Fatalf("%s: RebuildAbove %+v != serial %+v", ctx, parAbove, serialAbove)
			}
			if got := snapshotStats(dp); got != wantStats {
				t.Fatalf("%s: device stats %+v != serial %+v", ctx, got, wantStats)
			}
		}
	}
}

// TestZeroDigestsCached pins the cache: same engine parameters and
// depth share one table; different keys get distinct tables.
func TestZeroDigestsCached(t *testing.T) {
	g := NewGeometry(512)
	e := eng()
	a := ZeroDigests(e, g)
	b := ZeroDigests(e, g)
	if &a[0] != &b[0] {
		t.Fatal("ZeroDigests did not return the cached table")
	}
	g2 := NewGeometry(300) // same depth, different leaf count
	if c := ZeroDigests(e, g2); &c[0] != &a[0] {
		t.Fatal("ZeroDigests should key on depth, not leaf count")
	}
	e2 := cmeEngineWithKey(0xDEAD)
	if d := ZeroDigests(e2, g); d[1] == a[1] {
		t.Fatal("different keys must produce different zero digests")
	}
}
