package bmt

import (
	"sync/atomic"
	"time"
)

// Progress is a live watermark for a recovery rebuild: how many
// occupied source nodes (counter-level leaves, or boundary-level nodes
// for RebuildAbove) have been rehashed out of how many total. It is
// written by the rebuild engine — from the calling goroutine on the
// serial path, from pool workers on the parallel path — and read by
// telemetry gauges on arbitrary goroutines, so every field is atomic
// and every method is nil-safe. A recovery pass may run several
// rebuilds (e.g. a strict protocol verifying subtree by subtree);
// totals accumulate across them until the next Reset.
type Progress struct {
	total   atomic.Uint64
	done    atomic.Uint64
	passes  atomic.Uint64 // rebuilds begun since Reset
	active  atomic.Int64  // rebuilds currently running
	startNs atomic.Int64  // wall clock of the last Reset (UnixNano)
	wallNs  atomic.Uint64 // wall time of the last completed recovery
}

// ProgressSnapshot is one consistent-enough read of a Progress: the
// fields are loaded individually, so a snapshot taken mid-rebuild may
// be at most one increment skewed — fine for a watermark.
type ProgressSnapshot struct {
	// Done and Total count source leaves rehashed vs. discovered.
	Done, Total uint64
	// Passes counts rebuild invocations since the last Reset.
	Passes uint64
	// Active reports whether a rebuild is running right now.
	Active bool
	// WallNs is the wall time of the last completed recovery pass
	// (set by the caller via SetWall; 0 until one completes).
	WallNs uint64
	// StartUnixNs is when the current (or last) recovery began.
	StartUnixNs int64
}

// Reset zeroes the watermark at the start of a recovery pass.
func (p *Progress) Reset() {
	if p == nil {
		return
	}
	p.total.Store(0)
	p.done.Store(0)
	p.passes.Store(0)
	p.wallNs.Store(0)
	p.startNs.Store(time.Now().UnixNano())
}

// SetWall records the wall time of a completed recovery pass.
func (p *Progress) SetWall(ns uint64) {
	if p == nil {
		return
	}
	p.wallNs.Store(ns)
}

// Snapshot returns the current watermark.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		Done:        p.done.Load(),
		Total:       p.total.Load(),
		Passes:      p.passes.Load(),
		Active:      p.active.Load() > 0,
		WallNs:      p.wallNs.Load(),
		StartUnixNs: p.startNs.Load(),
	}
}

// begin announces a rebuild over n source nodes.
func (p *Progress) begin(n uint64) {
	if p == nil {
		return
	}
	p.total.Add(n)
	p.passes.Add(1)
	p.active.Add(1)
}

// add records n more source nodes rehashed. Safe from pool workers.
func (p *Progress) add(n uint64) {
	if p == nil {
		return
	}
	p.done.Add(n)
}

// end closes the rebuild begun by begin.
func (p *Progress) end() {
	if p == nil {
		return
	}
	p.active.Add(-1)
}
