package bmt

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"amnt/internal/scm"
	"amnt/internal/stats"
)

// -benchjson gates TestWriteRecoveryBench, which measures the rebuild
// benchmarks via testing.Benchmark and writes the before/after
// BENCH_recovery.json to the given path.
var benchJSON = flag.String("benchjson", "", "write rebuild benchmark results (BENCH_recovery.json) to this path")

// benchGeometries are the three leaf counts the benchmarks sweep:
// 16 MB, 128 MB, and 1 GB of protected data.
var benchGeometries = []uint64{4096, 32768, 262144}

// benchWorkers are the pool sizes BenchmarkRebuildParallel sweeps.
var benchWorkers = []int{1, 2, 4, 8}

// newBenchDevice returns a fully-occupied device with the paper's
// default timing — the worst-case (whole footprint) recovery input.
func newBenchDevice(leaves uint64) *scm.Device {
	d := scm.New(scm.Config{CapacityBytes: leaves * 4096})
	var blk [scm.BlockSize]byte
	for i := uint64(0); i < leaves; i++ {
		blk[0] = byte(i)
		blk[8] = byte(i >> 8)
		blk[16] = byte(i >> 16)
		d.Write(scm.Counter, i, blk[:])
	}
	return d
}

func benchRebuild(b *testing.B, leaves uint64, workers int) {
	g := NewGeometry(leaves)
	e := eng()
	d := newBenchDevice(leaves)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RebuildWith(d, e, g, 1, 0, RebuildOptions{Persist: true, Workers: workers})
	}
}

func BenchmarkRebuildSerial(b *testing.B) {
	for _, leaves := range benchGeometries {
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			benchRebuild(b, leaves, 1)
		})
	}
}

func BenchmarkRebuildParallel(b *testing.B) {
	for _, leaves := range benchGeometries {
		for _, w := range benchWorkers {
			b.Run(fmt.Sprintf("leaves=%d/workers=%d", leaves, w), func(b *testing.B) {
				benchRebuild(b, leaves, w)
			})
		}
	}
}

// seedBaseline is the seed tree's map-pipeline serial rebuild,
// measured with this file's exact setup (persist=true, full
// occupancy, default device timing, -benchtime 10x) at commit 3d040e6
// — the "before" column of BENCH_recovery.json.
var seedBaseline = stats.BenchSet{
	Label: "seed map-pipeline serial rebuild (commit 3d040e6)",
	Results: []stats.BenchResult{
		{Name: "BenchmarkRebuildSerial/leaves=4096", N: 10, NsPerOp: 1335619, AllocsPerOp: 737, BytesPerOp: 575460},
		{Name: "BenchmarkRebuildSerial/leaves=32768", N: 10, NsPerOp: 12844483, AllocsPerOp: 5538, BytesPerOp: 4643720},
		{Name: "BenchmarkRebuildSerial/leaves=262144", N: 10, NsPerOp: 157134262, AllocsPerOp: 43804, BytesPerOp: 37214264},
	},
}

// TestWriteRecoveryBench regenerates BENCH_recovery.json: the fixed
// seed baseline alongside live measurements of the flat-slice serial
// and parallel rebuild. Run with
//
//	go test ./internal/bmt -run WriteRecoveryBench -benchjson BENCH_recovery.json
func TestWriteRecoveryBench(t *testing.T) {
	if *benchJSON == "" {
		t.Skip("-benchjson not set")
	}
	after := stats.BenchSet{Label: "flat-slice rebuild (this tree)"}
	for _, leaves := range benchGeometries {
		leaves := leaves
		r := testing.Benchmark(func(b *testing.B) { benchRebuild(b, leaves, 1) })
		after.Add(stats.BenchResult{
			Name:        fmt.Sprintf("BenchmarkRebuildSerial/leaves=%d", leaves),
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: uint64(r.AllocsPerOp()),
			BytesPerOp:  uint64(r.AllocedBytesPerOp()),
		})
		for _, w := range benchWorkers {
			w := w
			r := testing.Benchmark(func(b *testing.B) { benchRebuild(b, leaves, w) })
			after.Add(stats.BenchResult{
				Name:        fmt.Sprintf("BenchmarkRebuildParallel/leaves=%d/workers=%d", leaves, w),
				N:           r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: uint64(r.AllocsPerOp()),
				BytesPerOp:  uint64(r.AllocedBytesPerOp()),
			})
		}
	}
	t.Logf("baseline:\n%s", seedBaseline.Benchstat())
	t.Logf("after:\n%s", after.Benchstat())
	doc := struct {
		Note     string         `json:"note"`
		GoOS     string         `json:"goos"`
		GoArch   string         `json:"goarch"`
		CPUs     int            `json:"cpus"`
		Baseline stats.BenchSet `json:"baseline"`
		After    stats.BenchSet `json:"after"`
	}{
		Note: "BMT recovery rebuild, persist=true over a fully occupied counter span; " +
			"baseline is the seed's per-level map pipeline, after is the flat-slice " +
			"engine (serial and sharded-parallel)",
		GoOS:     runtime.GOOS,
		GoArch:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		Baseline: seedBaseline,
		After:    after,
	}
	f, err := os.Create(*benchJSON)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
}
