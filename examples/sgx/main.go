// sgx: the paper's §2.1 remark, demonstrated — "the proposed protocol
// can be used in an SGX-style BMT with small modifications". This
// example runs the counter-embedded SGX-style integrity tree
// (internal/sgxtree) through the same story as the general BMT: lazy
// interior persistence, a crash, bounded recovery from an AMNT-style
// subtree register, and replay detection.
package main

import (
	"fmt"
	"log"

	"amnt/internal/cme"
	"amnt/internal/scm"
	"amnt/internal/sgxtree"
)

func main() {
	dev := scm.New(scm.Config{CapacityBytes: 4 << 20})
	eng := cme.NewEngine(cme.Fast{}, 0x5EED)
	tree := sgxtree.New(dev, eng, 512) // 512 leaf nodes, 4 levels

	// Populate two regions strictly, then pin subtree (2,0) in an
	// AMNT-style NV register and let its interior go lazy.
	for i := uint64(0); i < 32; i++ {
		if _, err := tree.Bump(i, sgxtree.Strict); err != nil {
			log.Fatal(err)
		}
		if _, err := tree.Bump(3000+i, sgxtree.Strict); err != nil {
			log.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		if _, err := tree.Bump(i%64, sgxtree.LeafPersist); err != nil {
			log.Fatal(err)
		}
	}
	reg, err := tree.CaptureSubtree(2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast subtree pinned at level %d index %d; %d interior nodes dirty\n",
		reg.Level, reg.Index, tree.DirtyNodes())

	// Power failure: the volatile node cache is gone; the register and
	// the leaf-persisted counters survive.
	tree.Crash()
	if _, err := tree.LeafCounter(5); err == nil {
		log.Fatal("stale interior verified without recovery?!")
	}
	repaired, err := tree.SubtreeRecover(reg)
	if err != nil {
		log.Fatal("subtree recovery: ", err)
	}
	c, err := tree.LeafCounter(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d nodes re-keyed inside the subtree; leaf 5 counter = %d\n", repaired, c)

	// A replayed leaf node (old counters + old MAC) is caught by the
	// parent's embedded counter.
	snap := dev.SnapshotBlock(scm.Tree, devLeafIndex(tree, 0))
	if _, err := tree.Bump(0, sgxtree.Strict); err != nil {
		log.Fatal(err)
	}
	dev.ReplayBlock(scm.Tree, devLeafIndex(tree, 0), snap)
	tree.Crash()
	if _, err := tree.LeafCounter(0); err != nil {
		fmt.Println("replay detected:", err)
	} else {
		log.Fatal("replayed leaf node verified — freshness lost")
	}
}

// devLeafIndex computes the Tree-region index of leaf-node 0's block:
// levels 2..Levels-1 precede the leaf level in storage order.
func devLeafIndex(t *sgxtree.Tree, leafNode uint64) uint64 {
	off := uint64(0)
	for l := 2; l < t.Levels; l++ {
		off += uint64(1) << (3 * uint(l-1))
	}
	return off + leafNode
}
