// multiprogram: two programs share one machine and fight over the
// fast subtree — the scenario that motivates AMNT++. The example runs
// the paper's bodytrack+fluidanimate pair on the two-core
// configuration with the stock kernel and with the AMNT++ modified
// buddy allocator, and shows how the biased physical page placement
// restores subtree locality.
package main

import (
	"fmt"
	"log"

	"amnt/internal/core"
	"amnt/internal/cpu"
	"amnt/internal/sim"
	"amnt/internal/workload"
)

func main() {
	bodytrack, _ := workload.ByName("bodytrack")
	fluid, _ := workload.ByName("fluidanimate")
	specs := []workload.Spec{bodytrack.Scale(0.4), fluid.Scale(0.4)}

	run := func(plusplus bool) sim.Result {
		cfg := sim.DefaultConfig()
		cfg.Core = cpu.MultiProgram()
		cfg.L3Bytes = 1 << 20
		cfg.StopAtFirstDone = true
		cfg.PrefragmentChurn = 40_000 // an aged, fragmented system
		cfg.AMNTPlusPlus = plusplus
		res, err := sim.Run(cfg, core.New(core.WithLevel(3)), specs...)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	plain := run(false)
	biased := run(true)

	fmt.Println("bodytrack + fluidanimate, two cores, aged allocator")
	fmt.Printf("%-22s %15s %15s\n", "", "stock kernel", "AMNT++ kernel")
	fmt.Printf("%-22s %15d %15d\n", "cycles", plain.Cycles, biased.Cycles)
	fmt.Printf("%-22s %14.1f%% %14.1f%%\n", "subtree hit rate", 100*plain.SubtreeHitRate, 100*biased.SubtreeHitRate)
	fmt.Printf("%-22s %15d %15d\n", "subtree movements", plain.Movements, biased.Movements)
	fmt.Printf("%-22s %15d %15d\n", "OS instructions", plain.OSInstructions, biased.OSInstructions)
	speedup := float64(plain.Cycles)/float64(biased.Cycles) - 1
	fmt.Printf("\nAMNT++ speedup: %.1f%% — from physical page placement alone;\n", 100*speedup)
	fmt.Printf("the modified OS costs %.2f%% extra instructions.\n",
		100*(float64(biased.OSInstructions)/float64(plain.OSInstructions)-1))
}
