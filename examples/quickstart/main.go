// Quickstart: build a secure SCM controller with the AMNT policy,
// write and read protected data, survive a power failure, and detect
// an attack — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"amnt/internal/core"
	"amnt/internal/mee"
	"amnt/internal/scm"
)

func main() {
	// A 16 MiB SCM device with the paper's Table 1 timing, fronted by
	// the memory encryption engine running A Midsummer Night's Tree
	// at subtree level 3.
	dev := scm.New(scm.Config{CapacityBytes: 16 << 20})
	amnt := core.New(core.WithLevel(3))
	ctrl := mee.New(dev, mee.DefaultConfig(), amnt)

	// Write a block. The controller encrypts it with counter-mode
	// encryption, persists its counter and HMAC, and updates the
	// Bonsai Merkle Tree under the fast-subtree persistence rules.
	msg := make([]byte, scm.BlockSize)
	copy(msg, "storage-class memory, but trustworthy")
	if _, err := ctrl.WriteBlock(0, 42, msg); err != nil {
		log.Fatal(err)
	}

	// Power failure: all volatile state (metadata cache, history
	// buffer) is gone. The device and the NV registers survive.
	ctrl.Crash()

	// Recovery rebuilds only the fast subtree and validates it
	// against the on-chip register.
	rep, err := ctrl.Recover(0)
	if err != nil {
		log.Fatal("recovery failed: ", err)
	}
	fmt.Printf("recovered: %.2f%% of the tree was stale, %d counters re-read\n",
		100*rep.StaleFraction, rep.CounterReads)

	// Data still decrypts and verifies.
	out := make([]byte, scm.BlockSize)
	if _, err := ctrl.ReadBlock(0, 42, out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", string(out[:38]))

	// An attacker with physical access flips one bit of ciphertext.
	dev.TamperByte(scm.Data, 42, 3, 0x80)
	if _, err := ctrl.ReadBlock(0, 42, out); err != nil {
		fmt.Println("tamper detected:", err)
	} else {
		log.Fatal("tampering went undetected!")
	}
}
