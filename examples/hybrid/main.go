// hybrid: the paper's §7.3 sketch made concrete — one machine, one
// integrity tree, two memory technologies. The low half of physical
// memory is SCM (crash-consistent under AMNT), the high half is DRAM
// (plain write-back BMT; its data dies with power anyway). The
// example places a durable write-ahead log on SCM and a scratch cache
// on DRAM, crashes the machine, and shows the log surviving while the
// scratch region resets — with tampering detected on both sides.
package main

import (
	"fmt"
	"log"

	"amnt/internal/core"
	"amnt/internal/hybrid"
	"amnt/internal/mee"
	"amnt/internal/scm"
)

func main() {
	dev := scm.New(scm.Config{CapacityBytes: 16 << 20})
	policy := hybrid.New(4, core.WithLevel(3)) // low 4/8 of memory is SCM
	ctrl := mee.New(dev, mee.DefaultConfig(), policy)
	fmt.Println("machine:", policy.String())

	// Geometry: 16 MiB => 4096 pages => blocks 0..262143; the SCM
	// partition is the low half.
	scmBase := uint64(0)       // durable write-ahead log lives here
	dramBase := uint64(200000) // scratch cache lives in the DRAM half

	writeString := func(block uint64, s string) {
		buf := make([]byte, scm.BlockSize)
		copy(buf, s)
		if _, err := ctrl.WriteBlock(0, block, buf); err != nil {
			log.Fatal(err)
		}
	}
	readString := func(block uint64) string {
		buf := make([]byte, scm.BlockSize)
		if _, err := ctrl.ReadBlock(0, block, buf); err != nil {
			log.Fatal(err)
		}
		n := 0
		for n < len(buf) && buf[n] != 0 {
			n++
		}
		return string(buf[:n])
	}

	// Commit three log records durably; stage scratch data in DRAM.
	for i := 0; i < 3; i++ {
		writeString(scmBase+uint64(i), fmt.Sprintf("log[%d]: commit txn %d", i, 100+i))
	}
	writeString(dramBase, "scratch: memoized query result")
	fmt.Println("before crash:")
	fmt.Println("  ", readString(scmBase+2))
	fmt.Println("  ", readString(dramBase))

	// Power failure.
	ctrl.Crash()
	rep, err := ctrl.Recover(0)
	if err != nil {
		log.Fatal("recovery: ", err)
	}
	fmt.Printf("recovered (%.3f%% of the tree was stale)\n", 100*rep.StaleFraction)

	fmt.Println("after crash:")
	for i := 0; i < 3; i++ {
		fmt.Println("  ", readString(scmBase+uint64(i)), "  [durable on SCM]")
	}
	if s := readString(dramBase); s == "" {
		fmt.Println("   scratch region: empty  [DRAM contents died with power, as they should]")
	} else {
		log.Fatalf("DRAM scratch survived a power failure: %q", s)
	}

	// The DRAM half remains integrity-protected for the new epoch.
	writeString(dramBase, "scratch: rebuilt after reboot")
	dev.TamperByte(scm.Data, dramBase, 2, 0xFF)
	buf := make([]byte, scm.BlockSize)
	if _, err := ctrl.ReadBlock(0, dramBase, buf); err != nil {
		fmt.Println("tamper on the DRAM side detected:", err)
	} else {
		log.Fatal("tampering on DRAM went undetected")
	}
}
