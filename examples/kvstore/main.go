// kvstore: a crash-consistent, integrity-protected key-value store on
// secure SCM — the in-memory storage application the paper's
// introduction motivates. Each record occupies one 64-byte protected
// block; the store survives simulated power failures through the AMNT
// recovery path, and every lookup is authenticated by the Bonsai
// Merkle Tree.
package main

import (
	"errors"
	"fmt"
	"log"

	"amnt/internal/core"
	"amnt/internal/mee"
	"amnt/internal/scm"
)

// KV is a fixed-capacity open-addressing hash table whose buckets are
// protected SCM blocks. Layout per block:
//
//	[0]      key length (0 = empty bucket)
//	[1..24]  key bytes
//	[25]     value length
//	[26..63] value bytes
type KV struct {
	ctrl    *mee.Controller
	buckets uint64
	now     uint64
}

const (
	maxKey   = 24
	maxValue = 38
)

// NewKV builds a store over the controller using the first `buckets`
// data blocks.
func NewKV(ctrl *mee.Controller, buckets uint64) *KV {
	return &KV{ctrl: ctrl, buckets: buckets}
}

func (kv *KV) hash(key string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h % kv.buckets
}

// Put inserts or updates a record.
func (kv *KV) Put(key, value string) error {
	if len(key) == 0 || len(key) > maxKey || len(value) > maxValue {
		return fmt.Errorf("kv: key/value size out of range")
	}
	var blk [scm.BlockSize]byte
	for probe := uint64(0); probe < kv.buckets; probe++ {
		b := (kv.hash(key) + probe) % kv.buckets
		cycles, err := kv.ctrl.ReadBlock(kv.now, b, blk[:])
		kv.now += cycles
		if err != nil {
			return err
		}
		existing := string(blk[1 : 1+blk[0]])
		if blk[0] != 0 && existing != key {
			continue // occupied by another key
		}
		blk[0] = byte(len(key))
		copy(blk[1:], key)
		blk[25] = byte(len(value))
		for i := range blk[26:] {
			blk[26+i] = 0
		}
		copy(blk[26:], value)
		cycles, err = kv.ctrl.WriteBlock(kv.now, b, blk[:])
		kv.now += cycles
		return err
	}
	return errors.New("kv: table full")
}

// Get fetches a record; found is false for absent keys.
func (kv *KV) Get(key string) (value string, found bool, err error) {
	var blk [scm.BlockSize]byte
	for probe := uint64(0); probe < kv.buckets; probe++ {
		b := (kv.hash(key) + probe) % kv.buckets
		cycles, err := kv.ctrl.ReadBlock(kv.now, b, blk[:])
		kv.now += cycles
		if err != nil {
			return "", false, err
		}
		if blk[0] == 0 {
			return "", false, nil
		}
		if string(blk[1:1+blk[0]]) == key {
			return string(blk[26 : 26+blk[25]]), true, nil
		}
	}
	return "", false, nil
}

// Cycles reports the simulated time spent so far.
func (kv *KV) Cycles() uint64 { return kv.now }

func main() {
	dev := scm.New(scm.Config{CapacityBytes: 16 << 20})
	ctrl := mee.New(dev, mee.DefaultConfig(), core.New(core.WithLevel(2)))
	kv := NewKV(ctrl, 4096)

	// Load a dataset.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user:%04d", i)
		val := fmt.Sprintf("session-%08x", i*2654435761)
		if err := kv.Put(key, val); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded 500 records in %d simulated cycles\n", kv.Cycles())

	// Power fails mid-operation.
	ctrl.Crash()
	rep, err := ctrl.Recover(kv.Cycles())
	if err != nil {
		log.Fatal("recovery failed: ", err)
	}
	fmt.Printf("power failure: recovered with %.2f%% of the tree stale\n", 100*rep.StaleFraction)

	// Every record survives, authenticated.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user:%04d", i)
		want := fmt.Sprintf("session-%08x", i*2654435761)
		got, found, err := kv.Get(key)
		if err != nil {
			log.Fatalf("get %s: %v", key, err)
		}
		if !found || got != want {
			log.Fatalf("get %s = %q/%v, want %q", key, got, found, want)
		}
	}
	fmt.Println("all 500 records intact and authenticated after the crash")

	// A replay attack against one bucket is caught on lookup.
	target := kv.hash("user:0007")
	snap := dev.SnapshotBlock(scm.Data, target)
	if err := kv.Put("user:0007", "tampered-session-x"); err != nil {
		log.Fatal(err)
	}
	dev.ReplayBlock(scm.Data, target, snap)
	ctrl.DropCached(mee.CounterKey(target / 64))
	if _, _, err := kv.Get("user:0007"); err != nil {
		fmt.Println("replay attack detected:", err)
	} else {
		log.Fatal("replayed record was accepted!")
	}
}
