// crashrecovery: subject every persistence protocol to the same
// write-heavy workload and the same power failure, then compare what
// recovery costs — the run-time/recovery-time trade-off at the heart
// of the paper, measured functionally.
package main

import (
	"fmt"
	"log"

	"amnt/internal/recovery"
	"amnt/internal/sim"
	"amnt/internal/stats"
	"amnt/internal/workload"
)

func main() {
	spec := workload.Spec{
		Name: "storage-churn", Suite: "demo", FootprintBytes: 32 << 20,
		WriteRatio: 0.6, GapMean: 4, Model: workload.Chase, Accesses: 60_000,
	}
	model := recovery.DefaultModel()
	table := stats.NewTable("One workload, one crash, every protocol",
		"protocol", "run cycles", "recovered?", "counters read", "data read", "nodes rebuilt", "modeled time")

	for _, name := range []string{"volatile", "strict", "leaf", "osiris", "anubis", "bmf", "amnt"} {
		policy, err := sim.PolicyByName(name, 3)
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.MemoryBytes = 64 << 20
		m := sim.NewMachine(cfg, policy, []workload.Spec{spec})
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		m.Crash()
		rep, err := m.Controller().Recover(m.Now())
		recovered := "yes"
		if err != nil {
			recovered = "NO: " + firstWords(err.Error(), 4)
		} else if verr := m.Controller().VerifyAll(m.Now()); verr != nil {
			recovered = "NO: post-verify failed"
		}
		table.AddRow(name, res.Cycles, recovered,
			rep.CounterReads, rep.DataReads, rep.NodeWrites,
			model.FromReport(rep).String())
	}
	table.AddNote("volatile cannot recover: its dirty metadata died with the power")
	table.AddNote("strict recovers for free but ran slowest; amnt recovers a bounded slice at near-leaf speed")
	fmt.Println(table.Render())
}

func firstWords(s string, n int) string {
	count := 0
	for i := range s {
		if s[i] == ' ' {
			count++
			if count == n {
				return s[:i] + "..."
			}
		}
	}
	return s
}
