// tuning: the system-administrator's view (§4.1, §6.7). The AMNT
// subtree level is a BIOS knob trading run-time performance against
// recovery downtime. This example sweeps the level for a workload,
// measures run time and subtree hit rate in simulation, combines them
// with the analytic recovery model at a target memory size, and
// prints the resulting trade-off frontier with a recommendation.
package main

import (
	"fmt"
	"log"
	"time"

	"amnt/internal/core"
	"amnt/internal/recovery"
	"amnt/internal/sim"
	"amnt/internal/stats"
	"amnt/internal/workload"
)

func main() {
	const deployedTB = 16e12 // the fleet runs 16 TB boxes
	budget := 2 * time.Second

	spec, _ := workload.ByName("deepsjeng")
	spec = spec.Scale(0.4)
	model := recovery.DefaultModel()

	table := stats.NewTable(
		fmt.Sprintf("AMNT subtree level sweep (deepsjeng; recovery modeled at 16 TB, budget %v)", budget),
		"level", "regions", "cycles", "subtree hit", "recovery", "in budget")

	type point struct {
		level  int
		cycles uint64
		rec    time.Duration
	}
	var frontier []point
	for level := 2; level <= 6; level++ {
		cfg := sim.DefaultConfig()
		cfg.SubtreeLevel = level
		cfg.PrefragmentChurn = 40_000
		policy := core.New(core.WithLevel(level))
		res, err := sim.Run(cfg, policy, spec)
		if err != nil {
			log.Fatal(err)
		}
		rec := model.AMNT(uint64(deployedTB), level)
		in := "yes"
		if rec > budget {
			in = "no"
		}
		table.AddRow(level, policy.Regions(), res.Cycles,
			fmt.Sprintf("%.1f%%", 100*res.SubtreeHitRate),
			rec.Round(time.Microsecond).String(), in)
		frontier = append(frontier, point{level, res.Cycles, rec})
	}
	fmt.Println(table.Render())

	best := -1
	for i, p := range frontier {
		if p.rec <= budget && (best < 0 || p.cycles < frontier[best].cycles) {
			best = i
		}
	}
	if best < 0 {
		fmt.Println("no level meets the budget; deploy strict persistence or shrink memory per node")
		return
	}
	fmt.Printf("recommendation: level %d — fastest configuration whose recovery (%v) fits the %v budget\n",
		frontier[best].level, frontier[best].rec.Round(time.Microsecond), budget)
}
