// Package amnt is a from-scratch Go reproduction of "A Midsummer
// Night's Tree: Efficient and High Performance Secure SCM" (ASPLOS
// 2024): a crash-consistent Bonsai Merkle Tree persistence protocol
// for storage-class memory, together with every substrate the paper's
// evaluation depends on — a PCM device model, set-associative cache
// hierarchy, counter-mode encryption, split counters, the BMT itself,
// the competing protocols (strict, leaf, Osiris, Anubis, BMF), a
// buddy-allocator OS model with the AMNT++ modification, synthetic
// PARSEC/SPEC workload generators, and a crash/recovery engine.
//
// Layout:
//
//	internal/core        AMNT — the paper's contribution
//	internal/mee         memory encryption engine + baseline protocols
//	internal/bmt         Bonsai Merkle Tree
//	internal/cme         counter-mode encryption, keyed hashing
//	internal/counters    split-counter blocks
//	internal/scm         the SCM (PCM) device model
//	internal/cache       generic set-associative cache
//	internal/cpu         L1/L2/L3 hierarchy
//	internal/kernel      buddy allocator, demand paging, AMNT++
//	internal/workload    synthetic PARSEC/SPEC traces
//	internal/sim         whole-machine simulator
//	internal/recovery    analytic recovery-time model (Table 4)
//	internal/hybrid      SCM+DRAM partitioned machine (§7.3)
//	internal/sgxtree     SGX-style counter-embedded tree (§2.1)
//	internal/experiments one driver per paper figure/table + ablations
//	internal/faults      fault injection + recovery invariant checker
//	internal/telemetry   metrics, time series, trace, HTTP introspection
//	internal/store       sharded concurrent KV store over MEE shards
//	cmd/amntsim          run one workload × protocol
//	cmd/amntbench        regenerate the paper's evaluation
//	cmd/amntrecover      recovery-time explorer
//	cmd/amntcrash        crash matrix sweep
//	cmd/amntd            HTTP serving daemon over the sharded store
//	cmd/amntload         concurrent load generator for amntd
//	examples/...         seven runnable walkthroughs
//
// The benchmark harness in bench_test.go regenerates every table and
// figure; see EXPERIMENTS.md for paper-versus-measured results and
// DESIGN.md for the substitution decisions (what the paper ran on
// gem5 versus what this repository builds).
package amnt
