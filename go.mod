module amnt

go 1.22
