// Benchmark harness: one benchmark per table and figure in the
// paper's evaluation (§6), plus controller micro-benchmarks. Each
// experiment benchmark runs its driver end to end at a reduced trace
// scale (set AMNT_BENCH_SCALE to change it; cmd/amntbench runs the
// same drivers at full scale) and reports the experiment's headline
// number as a custom metric so regressions in the reproduced result —
// not just in wall-clock speed — are visible.
package amnt_test

import (
	"os"
	"strconv"
	"testing"

	"amnt/internal/core"
	"amnt/internal/experiments"
	"amnt/internal/mee"
	"amnt/internal/recovery"
	"amnt/internal/scm"
	"amnt/internal/sim"
	"amnt/internal/stats"
	"amnt/internal/workload"
)

// benchScale returns the trace-length multiplier for experiment
// benchmarks (default 0.1).
func benchScale() float64 {
	if s := os.Getenv("AMNT_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

func benchOpts() experiments.Options {
	return experiments.Options{Scale: benchScale(), Seed: 1}
}

// meanOf extracts a named column from a table's "mean" row.
func meanOf(b *testing.B, t *stats.Table, col string) float64 {
	b.Helper()
	header := t.Header()
	idx := -1
	for i, h := range header {
		if h == col {
			idx = i
		}
	}
	if idx < 0 {
		b.Fatalf("no column %q", col)
	}
	rows := t.Rows()
	last := rows[len(rows)-1]
	v, err := strconv.ParseFloat(last[idx], 64)
	if err != nil {
		b.Fatalf("mean cell %q: %v", last[idx], err)
	}
	return v
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	var amnt, strict float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		amnt = meanOf(b, t, "amnt")
		strict = meanOf(b, t, "strict")
	}
	b.ReportMetric(amnt, "amnt-mean-norm")
	b.ReportMetric(strict, "strict-mean-norm")
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigures6And7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figures6And7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	// The four-core SPEC configuration has an 8 MB shared L3; traces
	// shorter than ~60k accesses never pressure it, so this benchmark
	// enforces a scale floor to keep the reported metric meaningful.
	opts := benchOpts()
	if opts.Scale < 0.3 {
		opts.Scale = 0.3
	}
	var amnt, anubis float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure8(opts)
		if err != nil {
			b.Fatal(err)
		}
		amnt = meanOf(b, t, "amnt")
		anubis = meanOf(b, t, "anubis")
	}
	b.ReportMetric(amnt, "amnt-mean-norm")
	b.ReportMetric(anubis, "anubis-mean-norm")
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	var leaf2TB float64
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchOpts()); err != nil {
			b.Fatal(err)
		}
		leaf2TB = float64(recovery.DefaultModel().Leaf(2e12).Milliseconds())
	}
	b.ReportMetric(leaf2TB, "leaf-2TB-recovery-ms")
}

func BenchmarkTable4Measured(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4Measured(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- controller micro-benchmarks ---------------------------------------

func benchPolicies() map[string]func() mee.Policy {
	return map[string]func() mee.Policy{
		"volatile": func() mee.Policy { return mee.NewVolatile() },
		"strict":   func() mee.Policy { return mee.NewStrict() },
		"leaf":     func() mee.Policy { return mee.NewLeaf() },
		"osiris":   func() mee.Policy { return mee.NewOsiris(4) },
		"anubis":   func() mee.Policy { return mee.NewAnubis() },
		"bmf":      func() mee.Policy { return mee.NewBMF() },
		"amnt":     func() mee.Policy { return core.New() },
	}
}

func BenchmarkWriteBlock(b *testing.B) {
	for name, mk := range benchPolicies() {
		b.Run(name, func(b *testing.B) {
			dev := scm.New(scm.Config{CapacityBytes: 64 << 20})
			ctrl := mee.New(dev, mee.DefaultConfig(), mk())
			buf := make([]byte, scm.BlockSize)
			b.SetBytes(scm.BlockSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctrl.WriteBlock(uint64(i), uint64(i)%65536, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadBlock(b *testing.B) {
	dev := scm.New(scm.Config{CapacityBytes: 64 << 20})
	ctrl := mee.New(dev, mee.DefaultConfig(), mee.NewLeaf())
	buf := make([]byte, scm.BlockSize)
	for i := 0; i < 65536; i++ {
		if _, err := ctrl.WriteBlock(0, uint64(i), buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(scm.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.ReadBlock(uint64(i), uint64(i)%65536, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrashRecovery(b *testing.B) {
	for name, mk := range benchPolicies() {
		if name == "volatile" {
			continue // cannot recover by design
		}
		b.Run(name, func(b *testing.B) {
			dev := scm.New(scm.Config{CapacityBytes: 64 << 20})
			ctrl := mee.New(dev, mee.DefaultConfig(), mk())
			buf := make([]byte, scm.BlockSize)
			for i := 0; i < 20000; i++ {
				if _, err := ctrl.WriteBlock(0, uint64(i*13)%65536, buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl.Crash()
				if _, err := ctrl.Recover(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatedWorkload reports simulator throughput (accesses
// per second of host time) for the default workload under AMNT.
func BenchmarkSimulatedWorkload(b *testing.B) {
	spec := workload.Quickstart()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.MemoryBytes = 256 << 20
		if _, err := sim.Run(cfg, core.New(), spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(spec.Accesses), "accesses/op")
}

func BenchmarkStorage(b *testing.B) {
	var amnt, anubis float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Storage(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		amnt = meanOf(b, t, "amnt")
		anubis = meanOf(b, t, "anubis")
	}
	b.ReportMetric(amnt, "amnt-mean-norm")
	b.ReportMetric(anubis, "anubis-mean-norm")
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}
