#!/usr/bin/env bash
# cluster_drill.sh — the end-to-end multi-node drill behind
# BENCH_cluster.json and the cluster-smoke CI job.
#
# Boots a 3-node amntd cluster behind amntproxy (shared checkpoint
# directory), then:
#
#   1. batched ycsb-a wave through the proxy (fan-out + merge path)
#   2. batched ycsb-a wave with amntload -cluster (client-side ring)
#   3. a live shard migration driven while a load wave is running
#   4. the kill drill: acked writes -> checkpoint barrier -> kill -9
#      one node -> sweep reassigns -> survivors adopt from the shared
#      checkpoint -> every acked key must read back intact
#   5. the killed node restarts, rejoins, and /v1/health converges ok
#
# Exits non-zero on any lost acked write, corruption, or failed
# convergence. Writes BENCH_cluster.json plus per-step artifacts into
# $ART (default: artifacts/).
set -euo pipefail
cd "$(dirname "$0")/.."

ART=${1:-artifacts}
CKPT=${CKPT:-$(mktemp -d)}
PROXY=http://127.0.0.1:18080
N1=http://127.0.0.1:18081
N2=http://127.0.0.1:18082
N3=http://127.0.0.1:18083
CLUSTER="n1=$N1,n2=$N2,n3=$N3"
DRILL_KEYS=${DRILL_KEYS:-64}
mkdir -p "$ART" "$CKPT"

[ -x ./amntd ] || go build -o amntd ./cmd/amntd
[ -x ./amntproxy ] || go build -o amntproxy ./cmd/amntproxy
[ -x ./amntload ] || go build -o amntload ./cmd/amntload

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

start_node() { # id addr
  ./amntd -addr "${2#http://}" -node-id "$1" -cluster-nodes "$CLUSTER" \
    -checkpoint-dir "$CKPT" -protocol amnt \
    >"$ART/amntd-$1.log" 2>&1 &
  PIDS+=($!)
  eval "PID_$1=$!"
}

wait_status() { # url want timeout-secs
  for _ in $(seq 1 $((${3} * 4))); do
    if [ "$(curl -s "$1" | jq -r .status 2>/dev/null)" = "$2" ]; then return 0; fi
    sleep 0.25
  done
  echo "FAIL: $1 never reported status=$2" >&2
  return 1
}

echo "== boot: 3 nodes + proxy (shared checkpoint dir $CKPT)"
start_node n1 "$N1"
start_node n2 "$N2"
start_node n3 "$N3"
./amntproxy -addr 127.0.0.1:18080 -cluster-nodes "$CLUSTER" \
  -pulse-ttl 2s >"$ART/amntproxy.log" 2>&1 &
PIDS+=($!)
wait_status "$PROXY/v1/health" ok 15

echo "== wave 1: batched ycsb-a through the proxy"
./amntload -addr "$PROXY" -workload ycsb-a -clients 8 -ops 8000 -batch 32 \
  -json | tee "$ART/cluster-load-proxy.json"
[ "$(jq .corruptions "$ART/cluster-load-proxy.json")" = 0 ]

echo "== wave 2: batched ycsb-a with client-side ring routing"
./amntload -cluster -nodes "$CLUSTER" -workload ycsb-a -clients 8 -ops 8000 \
  -batch 32 -json | tee "$ART/cluster-load-direct.json"
[ "$(jq .corruptions "$ART/cluster-load-direct.json")" = 0 ]
[ "$(jq '.nodes | length' "$ART/cluster-load-direct.json")" = 3 ]

echo "== live migration under load"
./amntload -addr "$PROXY" -workload ycsb-a -clients 4 -ops 6000 -batch 16 \
  -json >"$ART/cluster-load-during-migration.json" &
LOAD=$!
PART=$(curl -sf "$PROXY/v1/ring" \
  | jq '[.assign | to_entries[] | select(.value=="n1")][0].key | tonumber')
curl -sf -X POST "$PROXY/v1/cluster/migrate?part=$PART&to=n2" \
  | tee "$ART/migration-report.json"
[ "$(jq .partition "$ART/migration-report.json")" = "$PART" ]
[ "$(jq -r .to "$ART/migration-report.json")" = n2 ]
wait "$LOAD"
cat "$ART/cluster-load-during-migration.json"
[ "$(jq .corruptions "$ART/cluster-load-during-migration.json")" = 0 ]
[ "$(curl -s "$PROXY/v1/ring" | jq -r ".assign[$PART]")" = n2 ]

echo "== kill drill: acked writes, checkpoint barrier, kill -9 n2"
for k in $(seq 0 $((DRILL_KEYS - 1))); do
  curl -sf -X PUT --data-binary "drill-$k" "$PROXY/v1/kv/$k" >/dev/null
done
curl -sf -X POST "$PROXY/v1/checkpoint" | tee "$ART/checkpoint-barrier.json"
kill -9 "$PID_n2"
# The sweep (pulse TTL 2s) must mark n2 down, reassign its
# partitions, and auto-adopt them from the shared checkpoint dir.
for _ in $(seq 1 60); do
  NODES=$(curl -s "$PROXY/v1/cluster/nodes")
  if [ "$(echo "$NODES" | jq .nodes.n2.alive)" = false ] &&
     [ "$(echo "$NODES" | jq '.pending | length')" = 0 ]; then break; fi
  sleep 0.5
done
echo "$NODES" | tee "$ART/cluster-nodes-post-kill.json"
[ "$(echo "$NODES" | jq .nodes.n2.alive)" = false ]
[ "$(echo "$NODES" | jq '.pending | length')" = 0 ]
[ "$(echo "$NODES" | jq .nodes.n2.owned)" = 0 ]

echo "== verify: zero lost acked writes"
LOST=0
for k in $(seq 0 $((DRILL_KEYS - 1))); do
  GOT=$(curl -sf "$PROXY/v1/kv/$k" | jq -r .value_b64 | base64 -d || true)
  if [ "$GOT" != "drill-$k" ]; then
    echo "LOST acked write: key $k => '$GOT'" >&2
    LOST=$((LOST + 1))
  fi
done
[ "$LOST" = 0 ]
# The cluster keeps taking writes for the adopted partitions.
for k in $(seq 0 $((DRILL_KEYS - 1))); do
  curl -sf -X PUT --data-binary "postkill-$k" "$PROXY/v1/kv/$k" >/dev/null
done

echo "== revival: n2 restarts, rejoins, health converges to ok"
start_node n2 "$N2"
wait_status "$PROXY/v1/health" ok 30
curl -s "$PROXY/v1/health" | tee "$ART/cluster-health-final.json" >/dev/null
curl -s "$PROXY/v1/store/stats" >"$ART/cluster-stats-final.json"

jq -n \
  --argjson proxy_wave "$(cat "$ART/cluster-load-proxy.json")" \
  --argjson direct_wave "$(cat "$ART/cluster-load-direct.json")" \
  --argjson migration_wave "$(cat "$ART/cluster-load-during-migration.json")" \
  --argjson migration "$(cat "$ART/migration-report.json")" \
  --argjson drill_keys "$DRILL_KEYS" \
  --argjson lost "$LOST" \
  '{
    cluster: {nodes: 3, partitions: 64, pulse_ttl_ms: 2000},
    proxy_wave: $proxy_wave,
    direct_wave: $direct_wave,
    migration: $migration,
    migration_wave: $migration_wave,
    kill_drill: {
      acked_keys: $drill_keys,
      lost_acked_writes: $lost,
      corruptions: ($proxy_wave.corruptions + $direct_wave.corruptions
                    + $migration_wave.corruptions),
      converged_ok: true
    }
  }' | tee BENCH_cluster.json
cp BENCH_cluster.json "$ART/BENCH_cluster.json"
echo "== cluster drill PASSED"
